//! SCD: the Sparse Chain Detector (§IV-D).
//!
//! Maintains the Indirect Pattern Table (IPT): for each active sparse
//! chain, the structure's start address (`ss_start`), the element scale
//! (`stride`, a shift for power-of-two rows; general multiply otherwise)
//! and the last prefetched indirect index (LPI). The paper's prediction
//! formula
//!
//! ```text
//! IA_address = IA_ss_start + (W_LPI << stride)
//! ```
//!
//! is evaluated here for every speculatively loaded index value. Where the
//! chain is two-level (voxel-hash lookups), the IPT also records the
//! intermediate table base so the controller can schedule the extra probe
//! read on the sparse unit.

use nvr_common::{Addr, Region};
use nvr_trace::{GatherDesc, SparseFunc};

/// One Indirect Pattern Table entry, mirrored from the snooped sparse-unit
/// registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IptEntry {
    /// Base address of the gathered structure (`IA_ss_start`).
    pub ss_start: Addr,
    /// Bytes per gathered row (the `<< stride` scale).
    pub row_bytes: u64,
    /// Intermediate table base for two-level chains.
    pub table_base: Option<Addr>,
    /// Last prefetched indirect index (LPI).
    pub lpi: u32,
}

/// The sparse-chain detector.
///
/// # Examples
///
/// ```
/// use nvr_core::SparseChainDetector;
/// use nvr_trace::{GatherDesc, SparseFunc};
/// use nvr_common::Addr;
///
/// let mut scd = SparseChainDetector::new();
/// scd.observe_gather(&GatherDesc {
///     func: SparseFunc::Affine { ia_base: Addr::new(0x1000), row_bytes: 64 },
///     batch: 16,
/// });
/// let r = scd.predict_target(3).expect("trained");
/// assert_eq!(r.start(), Addr::new(0x1000 + 3 * 64));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseChainDetector {
    entry: Option<IptEntry>,
}

impl SparseChainDetector {
    /// An empty detector.
    #[must_use]
    pub fn new() -> Self {
        SparseChainDetector::default()
    }

    /// Mirrors the snooped gather registers into the IPT.
    pub fn observe_gather(&mut self, gather: &GatherDesc) {
        let (ss_start, row_bytes, table_base) = match gather.func {
            SparseFunc::Affine { ia_base, row_bytes } => (ia_base, row_bytes, None),
            SparseFunc::TableLookup {
                table_base,
                ia_base,
                row_bytes,
            } => (ia_base, row_bytes, Some(table_base)),
        };
        let lpi = self.entry.map_or(0, |e| e.lpi);
        self.entry = Some(IptEntry {
            ss_start,
            row_bytes,
            table_base,
            lpi,
        });
    }

    /// Whether a chain is currently tracked.
    #[must_use]
    pub fn is_trained(&self) -> bool {
        self.entry.is_some()
    }

    /// The current IPT entry.
    #[must_use]
    pub fn entry(&self) -> Option<&IptEntry> {
        self.entry.as_ref()
    }

    /// Whether the tracked chain requires an intermediate table probe.
    #[must_use]
    pub fn is_two_level(&self) -> bool {
        self.entry.is_some_and(|e| e.table_base.is_some())
    }

    /// Probe address for index value `idx` of a two-level chain.
    #[must_use]
    pub fn probe_addr(&self, idx: u32) -> Option<Addr> {
        self.entry
            .and_then(|e| e.table_base)
            .map(|t| t.offset(u64::from(idx) * 4))
    }

    /// Predicts the gather target region for (resolved) index value `idx`
    /// — `IA_ss_start + (idx << stride)` — and records it as the LPI.
    pub fn predict_and_track(&mut self, idx: u32) -> Option<Region> {
        let e = self.entry.as_mut()?;
        e.lpi = idx;
        Some(Region::new(
            e.ss_start.offset(u64::from(idx) * e.row_bytes),
            e.row_bytes,
        ))
    }

    /// Predicts without updating the LPI.
    #[must_use]
    pub fn predict_target(&self, idx: u32) -> Option<Region> {
        self.entry
            .map(|e| Region::new(e.ss_start.offset(u64::from(idx) * e.row_bytes), e.row_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_chain_tracking() {
        let mut scd = SparseChainDetector::new();
        assert!(!scd.is_trained());
        scd.observe_gather(&GatherDesc {
            func: SparseFunc::Affine {
                ia_base: Addr::new(0x4000_0000),
                row_bytes: 128,
            },
            batch: 16,
        });
        assert!(scd.is_trained());
        assert!(!scd.is_two_level());
        assert_eq!(scd.probe_addr(5), None);
        let r = scd.predict_and_track(5).expect("trained");
        assert_eq!(r.start(), Addr::new(0x4000_0000 + 5 * 128));
        assert_eq!(r.bytes(), 128);
        assert_eq!(scd.entry().expect("entry").lpi, 5);
    }

    #[test]
    fn two_level_chain_probe() {
        let mut scd = SparseChainDetector::new();
        scd.observe_gather(&GatherDesc {
            func: SparseFunc::TableLookup {
                table_base: Addr::new(0x2000),
                ia_base: Addr::new(0x8000_0000),
                row_bytes: 64,
            },
            batch: 16,
        });
        assert!(scd.is_two_level());
        assert_eq!(scd.probe_addr(7), Some(Addr::new(0x2000 + 28)));
    }

    #[test]
    fn lpi_survives_reobservation() {
        let mut scd = SparseChainDetector::new();
        let desc = GatherDesc {
            func: SparseFunc::Affine {
                ia_base: Addr::new(0x1000),
                row_bytes: 64,
            },
            batch: 16,
        };
        scd.observe_gather(&desc);
        scd.predict_and_track(42);
        scd.observe_gather(&desc); // next tile, same chain
        assert_eq!(scd.entry().expect("entry").lpi, 42);
    }

    #[test]
    fn untrained_predicts_nothing() {
        let mut scd = SparseChainDetector::new();
        assert_eq!(scd.predict_and_track(1), None);
        assert_eq!(scd.predict_target(1), None);
    }
}
