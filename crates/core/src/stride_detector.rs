//! SD: the Stride Detector (§IV-B).
//!
//! A small reference-prediction table keyed by synthetic PC, tracking the
//! W/index stream so NVR can issue stream prefetches for upcoming index
//! lines. Entry layout follows Table I: previous address, stride,
//! last-prefetched address and a 2-bit confidence per entry.

use nvr_common::{Addr, LineAddr};
use nvr_prefetch::StrideEntry;

/// The NVR stride detector: a PC-indexed table of [`StrideEntry`]s plus
/// last-prefetch tracking to avoid re-issuing the same line.
///
/// # Examples
///
/// ```
/// use nvr_core::StrideDetector;
/// use nvr_common::Addr;
///
/// let mut sd = StrideDetector::new(16);
/// for i in 0..4 {
///     sd.observe(0x100, Addr::new(0x1000 + i * 4));
/// }
/// assert_eq!(sd.stride(0x100), Some(4));
/// ```
#[derive(Debug, Clone)]
pub struct StrideDetector {
    entries: Vec<(u64, StrideEntry, Option<LineAddr>)>,
    capacity: usize,
}

impl StrideDetector {
    /// Creates a detector with `capacity` PC entries (Table I: N=16).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stride detector needs at least one entry");
        StrideDetector {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Feeds one observed access for `pc`.
    pub fn observe(&mut self, pc: u64, addr: Addr) {
        if let Some((_, e, _)) = self.entries.iter_mut().find(|(p, _, _)| *p == pc) {
            e.update(addr);
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        let mut e = StrideEntry::new();
        e.update(addr);
        self.entries.push((pc, e, None));
    }

    /// The confident stride for `pc`, if trained.
    #[must_use]
    pub fn stride(&self, pc: u64) -> Option<i64> {
        self.entries
            .iter()
            .find(|(p, _, _)| *p == pc)
            .and_then(|(_, e, _)| e.is_confident().then(|| e.stride()))
    }

    /// Predicted address `ahead` strides past the last observation for `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64, ahead: u64) -> Option<Addr> {
        self.entries
            .iter()
            .find(|(p, _, _)| *p == pc)
            .and_then(|(_, e, _)| e.predict(ahead))
    }

    /// Records that `line` was prefetched for `pc`; returns `false` when it
    /// equals the previously recorded line (duplicate suppression — the
    /// "last prefetch addr" field of Table I).
    pub fn note_prefetched(&mut self, pc: u64, line: LineAddr) -> bool {
        if let Some((_, _, last)) = self.entries.iter_mut().find(|(p, _, _)| *p == pc) {
            if *last == Some(line) {
                return false;
            }
            *last = Some(line);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_multiple_pcs() {
        let mut sd = StrideDetector::new(4);
        for i in 0..4u64 {
            sd.observe(1, Addr::new(1000 + i * 4));
            sd.observe(2, Addr::new(9000 + i * 64));
        }
        assert_eq!(sd.stride(1), Some(4));
        assert_eq!(sd.stride(2), Some(64));
        assert_eq!(sd.stride(3), None);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut sd = StrideDetector::new(2);
        sd.observe(1, Addr::new(0));
        sd.observe(2, Addr::new(0));
        sd.observe(3, Addr::new(0)); // evicts pc=1
        assert!(sd.entries.iter().all(|(p, _, _)| *p != 1));
        assert_eq!(sd.entries.len(), 2);
    }

    #[test]
    fn duplicate_prefetch_suppressed() {
        let mut sd = StrideDetector::new(2);
        sd.observe(1, Addr::new(0));
        let line = LineAddr::new(7);
        assert!(sd.note_prefetched(1, line));
        assert!(!sd.note_prefetched(1, line));
        assert!(sd.note_prefetched(1, LineAddr::new(8)));
    }

    #[test]
    fn prediction_goes_through() {
        let mut sd = StrideDetector::new(2);
        for i in 0..5u64 {
            sd.observe(9, Addr::new(i * 128));
        }
        assert_eq!(sd.predict(9, 2), Some(Addr::new(4 * 128 + 256)));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _ = StrideDetector::new(0);
    }
}
