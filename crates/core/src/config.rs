//! NVR configuration.

use nvr_common::NvrError;

/// When NVR enters runahead (§III Q&A1 vs the DVR-style alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TriggerPolicy {
    /// Proactive: runahead whenever an NPU load instruction is in execution
    /// (the paper's design — prefetching for the *next* loads while the
    /// current one runs).
    #[default]
    OnLoad,
    /// Reactive: runahead only once a demand gather has actually missed
    /// (ablation: DVR-style triggering inside the NVR datapath).
    OnStall,
}

/// Tuning knobs of the NVR prefetcher.
///
/// # Examples
///
/// ```
/// use nvr_core::NvrConfig;
///
/// let cfg = NvrConfig::default();
/// assert_eq!(cfg.vector_width, 16);
/// cfg.validate()?;
/// # Ok::<(), nvr_common::NvrError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NvrConfig {
    /// Parallel entries N — the vector processing width (Table I, N=16).
    pub vector_width: usize,
    /// Line capacity of one VIGU vector operation (§IV-F). Each of the N
    /// PIE lanes resolves one gather target per cycle, and a target row may
    /// straddle a line boundary, so the issued vector carries up to
    /// `2 * vector_width` line addresses. Collapsing this to N lines (the
    /// pre-calibration value) throttles VMIG drain on multi-line rows and
    /// under-reports the paper's miss coverage.
    pub vmig_batch_lines: usize,
    /// Cache-line budget of outstanding speculative coverage: runahead may
    /// keep at most this many prefetched-but-unconsumed lines ahead of the
    /// ROB head. Expressed in lines (not tiles) so the depth adapts to row
    /// width — fat rows get shallow lookahead (less L2 thrash), thin rows
    /// get deep lookahead (more latency hiding).
    pub lookahead_lines: usize,
    /// Fuzzy-range factor applied to predicted windows (§III,
    /// coverage-oriented philosophy): >1 over-fetches slightly to secure
    /// whole batches at the cost of some redundancy.
    pub fuzzy_factor: f64,
    /// Whether the Loop Bound Detector clips predicted windows (ablation:
    /// without it, NVR overruns like a fixed-distance runahead).
    pub use_lbd: bool,
    /// Whether prefetches also fill the NSB (only meaningful when the
    /// memory system has one).
    pub fill_nsb: bool,
    /// Runahead entry policy.
    pub trigger: TriggerPolicy,
}

impl NvrConfig {
    /// The configuration used when an NSB is present (§IV-G).
    #[must_use]
    pub fn with_nsb() -> Self {
        NvrConfig {
            fill_nsb: true,
            ..NvrConfig::default()
        }
    }

    /// Checks the configuration is realisable.
    ///
    /// # Errors
    ///
    /// Returns [`NvrError::Config`] if a knob is zero or the fuzzy factor is
    /// not in `[1.0, 2.0]`.
    pub fn validate(&self) -> Result<(), NvrError> {
        if self.vector_width == 0 || self.lookahead_lines == 0 || self.vmig_batch_lines == 0 {
            return Err(NvrError::Config(
                "NVR vector width, VMIG batch and lookahead budget must be non-zero".into(),
            ));
        }
        if !(1.0..=2.0).contains(&self.fuzzy_factor) {
            return Err(NvrError::Config(format!(
                "fuzzy factor {} outside [1.0, 2.0]",
                self.fuzzy_factor
            )));
        }
        Ok(())
    }
}

impl Default for NvrConfig {
    fn default() -> Self {
        NvrConfig {
            vector_width: 16,
            vmig_batch_lines: 32,
            lookahead_lines: 256,
            fuzzy_factor: 1.1,
            use_lbd: true,
            fill_nsb: false,
            trigger: TriggerPolicy::OnLoad,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        NvrConfig::default().validate().expect("valid");
        NvrConfig::with_nsb().validate().expect("valid");
        assert!(NvrConfig::with_nsb().fill_nsb);
    }

    #[test]
    fn invalid_knobs_rejected() {
        let bad = NvrConfig {
            vector_width: 0,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            lookahead_lines: 0,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            vmig_batch_lines: 0,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            fuzzy_factor: 3.0,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            fuzzy_factor: 0.5,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
