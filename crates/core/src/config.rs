//! NVR configuration.

use nvr_common::NvrError;

/// When NVR enters runahead (§III Q&A1 vs the DVR-style alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TriggerPolicy {
    /// Proactive: runahead whenever an NPU load instruction is in execution
    /// (the paper's design — prefetching for the *next* loads while the
    /// current one runs).
    #[default]
    OnLoad,
    /// Reactive: runahead only once a demand gather has actually missed
    /// (ablation: DVR-style triggering inside the NVR datapath).
    OnStall,
}

/// Tuning knobs of the NVR prefetcher.
///
/// Every knob names its paper counterpart and the rationale for its
/// default; the defaults reproduce the paper's Table I configuration as
/// calibrated by this repo's headline run (`cargo run -p nvr_bench --bin
/// headline`).
///
/// # Examples
///
/// ```
/// use nvr_core::NvrConfig;
///
/// let cfg = NvrConfig::default();
/// assert_eq!(cfg.vector_width, 16);
/// cfg.validate()?;
/// # Ok::<(), nvr_common::NvrError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NvrConfig {
    /// Parallel entries N — the vector processing width (Table I, N=16).
    ///
    /// One PIE group resolves `vector_width` index elements per cycle, and
    /// the depth bound falls back to this granularity, so it is the quantum
    /// of all speculative progress. Default 16 = the paper's N.
    pub vector_width: usize,
    /// Line capacity of one VIGU vector operation (§IV-F). Each of the N
    /// PIE lanes resolves one gather target per cycle, and a target row may
    /// straddle a line boundary, so the issued vector carries up to
    /// `2 * vector_width` line addresses. Collapsing this to N lines (the
    /// pre-calibration value) throttles VMIG drain on multi-line rows and
    /// under-reports the paper's miss coverage. Default 32 = `2 * 16`.
    pub vmig_batch_lines: usize,
    /// Cache-line budget of outstanding *target* coverage: a speculative
    /// window may start resolving (and so issuing target prefetches) only
    /// while its start is within this many lines of the NPU's consumption
    /// pointer. Expressed in lines (not elements) so the reach adapts to
    /// row width — fat rows get shallow lookahead (less L2 thrash), thin
    /// rows get deep lookahead (more latency hiding). Maps to the paper's
    /// fixed speculative-MSHR/NSB capacity budget (§IV-F/G). Default 256
    /// lines = 16 KiB of 64 B lines, the NSB capacity of Table I.
    pub lookahead_lines: usize,
    /// Maximum speculative windows the controller keeps in flight at once
    /// — the cross-tile lookahead depth of the pipelined front-end (§III's
    /// decoupled runahead thread, which keeps speculating across tile
    /// boundaries instead of parking at each window edge). Only the
    /// *index-fetch* side runs this deep (opening a window costs a
    /// handful of sequential line fetches); target resolution stays
    /// paced by [`NvrConfig::lookahead_lines`]. Depth 1 degenerates to
    /// the pre-pipelining one-window-at-a-time episode loop (the `fig6b`
    /// driver uses exactly that as its baseline). Default 4: deep enough
    /// to cover a DRAM round trip of index-fetch latency on every
    /// measured workload; 8 and 16 measure no better, and the usefulness
    /// throttle below handles the workloads that cannot absorb even 4.
    pub lookahead_tiles: usize,
    /// DARE-style usefulness throttle: when the rolling ratio of
    /// evicted-unused prefetches (measured by [`crate::LifetimeTracker`]
    /// over the last [`NvrConfig::throttle_window`] resolved prefetches)
    /// crosses this threshold, the effective lookahead depth collapses
    /// back to 1, recovering as the ratio drops. Filters lookahead by
    /// *observed* usefulness rather than window extent — deep lookahead
    /// where it pays, shallow where it pollutes. Must lie in `(0, 1]`;
    /// 1.0 never throttles. Default 0.1: a rolling window where more
    /// than one prefetch in ten is evicted untouched means the pipeline
    /// is churning the L2 (GCN-class turnover) and pipelined opens stop
    /// paying for themselves.
    pub throttle_evicted_ratio: f64,
    /// Resolved-prefetch capacity of the throttle's rolling window.
    /// Smaller reacts faster but jitters; larger smooths phase changes
    /// away. Default 128 = half the default line budget, so a fully
    /// wasted window is noticed within one lookahead depth's worth of
    /// outcomes.
    pub throttle_window: usize,
    /// Fuzzy-range factor applied to predicted windows (§III,
    /// coverage-oriented philosophy): >1 over-fetches slightly to secure
    /// whole batches at the cost of some redundancy. Valid in
    /// `[1.0, 2.0]`; default 1.1 = the paper's 10% over-fetch posture.
    pub fuzzy_factor: f64,
    /// Whether the Loop Bound Detector clips predicted windows (§IV-E;
    /// ablation: without it, NVR overruns like a fixed-distance runahead).
    /// Default true — the SST is core to the paper's design.
    pub use_lbd: bool,
    /// Whether prefetches also fill the NSB (§IV-G; only meaningful when
    /// the memory system has one). Default false; [`NvrConfig::with_nsb`]
    /// enables it.
    pub fill_nsb: bool,
    /// DARE-style retention-priority threshold: a resolved target line's
    /// predicted-reuse score (how many *more* times the current runahead
    /// windows will touch the line, counted by the controller's
    /// [`crate::ReusePredictor`] over the window machinery's resolved
    /// targets) earns eviction protection in scored levels only once it
    /// reaches this value. Every prefetch still fills the NSB — streaming
    /// workloads keep their near-NPU hits — but below-threshold lines
    /// compete at score 1 (their single imminent use), so demonstrated
    /// hubs outrank the stream for residency. 0 disables scoring entirely
    /// — every fill carries score 0 and scored levels behave exactly as
    /// pure LRU, bit for bit. Only meaningful with [`NvrConfig::fill_nsb`]
    /// and a [`nvr_mem::RetentionPolicy::ScoredReuse`] NSB
    /// ([`crate::nsb_scored`]). Default 0; [`NvrConfig::with_nsb`] sets
    /// the calibrated value 4 (a line must be touched by at least four
    /// distinct gather targets in the lookahead horizon to outrank NSB
    /// residents — the sweet spot of the fig9 policy study: lower
    /// thresholds pin GSABT's briefly-hot attention blocks past their
    /// window, higher ones forfeit GCN's and DS's hub reuse).
    pub nsb_admit_min_reuse: u32,
    /// Runahead entry policy (§III Q&A1). Default
    /// [`TriggerPolicy::OnLoad`], the paper's proactive design.
    pub trigger: TriggerPolicy,
}

impl NvrConfig {
    /// The configuration used when an NSB is present (§IV-G).
    #[must_use]
    pub fn with_nsb() -> Self {
        NvrConfig {
            fill_nsb: true,
            nsb_admit_min_reuse: 4,
            ..NvrConfig::default()
        }
    }

    /// Checks the configuration is realisable.
    ///
    /// # Errors
    ///
    /// Returns [`NvrError::Config`] if a knob is zero, the fuzzy factor is
    /// not in `[1.0, 2.0]`, or the throttle threshold is not in `(0, 1]`.
    pub fn validate(&self) -> Result<(), NvrError> {
        if self.vector_width == 0 || self.lookahead_lines == 0 || self.vmig_batch_lines == 0 {
            return Err(NvrError::Config(
                "NVR vector width, VMIG batch and lookahead budget must be non-zero".into(),
            ));
        }
        if self.lookahead_tiles == 0 || self.throttle_window == 0 {
            return Err(NvrError::Config(
                "NVR lookahead depth and throttle window must be non-zero".into(),
            ));
        }
        if !(1.0..=2.0).contains(&self.fuzzy_factor) {
            return Err(NvrError::Config(format!(
                "fuzzy factor {} outside [1.0, 2.0]",
                self.fuzzy_factor
            )));
        }
        if !(self.throttle_evicted_ratio > 0.0 && self.throttle_evicted_ratio <= 1.0) {
            return Err(NvrError::Config(format!(
                "throttle ratio {} outside (0, 1]",
                self.throttle_evicted_ratio
            )));
        }
        Ok(())
    }
}

impl Default for NvrConfig {
    fn default() -> Self {
        NvrConfig {
            vector_width: 16,
            vmig_batch_lines: 32,
            lookahead_lines: 256,
            lookahead_tiles: 4,
            throttle_evicted_ratio: 0.1,
            throttle_window: 128,
            fuzzy_factor: 1.1,
            use_lbd: true,
            fill_nsb: false,
            nsb_admit_min_reuse: 0,
            trigger: TriggerPolicy::OnLoad,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        NvrConfig::default().validate().expect("valid");
        NvrConfig::with_nsb().validate().expect("valid");
        assert!(NvrConfig::with_nsb().fill_nsb);
    }

    #[test]
    fn invalid_knobs_rejected() {
        let bad = NvrConfig {
            vector_width: 0,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            lookahead_lines: 0,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            vmig_batch_lines: 0,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            fuzzy_factor: 3.0,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            fuzzy_factor: 0.5,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            lookahead_tiles: 0,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            throttle_window: 0,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            throttle_evicted_ratio: 0.0,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = NvrConfig {
            throttle_evicted_ratio: 1.5,
            ..NvrConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
