//! NVR: NPU Vector Runahead — the paper's primary contribution.
//!
//! NVR is a decoupled, speculative, lightweight hardware sub-thread that
//! rides alongside the NPU (§III–§IV). It monitors CPU/NPU state through
//! read-only snoopers, borrows the sparse-operators unit during its idle
//! periods to execute approximate dependency chains ahead of the pipeline,
//! and injects native vectorised prefetch loads. Its components, each a
//! module here mirroring Fig. 3:
//!
//! | Paper unit | Module | Role |
//! |---|---|---|
//! | Snooper            | [`controller`] (event routing) | read-only CPU/NPU state extraction |
//! | Stride Detector    | [`stride_detector`] | W/index stream prediction |
//! | Loop Bound Detector| [`loop_bound`] | window prediction + overrun clipping (SST) |
//! | Sparse Chain Det.  | [`sparse_chain`] | indirect-chain target computation (IPT) |
//! | VMIG               | [`vmig`] | micro-instruction revectorisation, 16-wide issue |
//! | NSB                | [`nsb`] | in-NPU non-blocking speculative buffer config |
//! | —                  | [`overhead`] | Table I storage accounting |
//!
//! The composition — [`NvrPrefetcher`] — implements
//! [`nvr_prefetch::Prefetcher`] and plugs into the same engine socket as the
//! baselines.
//!
//! # Crate features
//!
//! * **`nvr-debug`** — verbose runahead tracing from the [`controller`] on
//!   stderr: every speculative window open (`NVR window [start, end) ...`)
//!   and every depth-bound stall (`NVR bound: ...`). Off by default and
//!   fully compiled out when disabled, so the timing model pays nothing
//!   for it. Enable it when a workload's coverage looks wrong and you need
//!   to see *where* runahead stopped:
//!
//!   ```sh
//!   cargo run -p nvr_sim --bin diag --features nvr_core/nvr-debug
//!   cargo test -p nvr_core --features nvr-debug -- --nocapture
//!   ```
//!
//! # Examples
//!
//! ```
//! use nvr_core::{NvrConfig, NvrPrefetcher};
//! use nvr_prefetch::Prefetcher;
//!
//! let nvr = NvrPrefetcher::new(NvrConfig::default());
//! assert_eq!(nvr.name(), "NVR");
//! assert!(!nvr.fills_nsb()); // until an NSB is configured
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod controller;
pub mod lifetime;
pub mod loop_bound;
pub mod nsb;
pub mod overhead;
pub mod reuse;
pub mod sparse_chain;
pub mod stride_detector;
pub mod vmig;

pub use config::{NvrConfig, TriggerPolicy};
pub use controller::NvrPrefetcher;
pub use lifetime::LifetimeTracker;
pub use loop_bound::LoopBoundDetector;
pub use nsb::{nsb_config, nsb_scored};
pub use overhead::{overhead_report, OverheadReport};
pub use reuse::ReusePredictor;
pub use sparse_chain::SparseChainDetector;
pub use stride_detector::StrideDetector;
pub use vmig::Vmig;
