//! VMIG: the Vectorisation Micro-Instruction Generator (§IV-F).
//!
//! A three-stage pipeline in hardware — IRU (instruction reconstruction),
//! PIE (parallel inference of `sparse_func` across 16 lanes using the VRF),
//! VIGU (vector instruction generation) — that bundles resolved prefetch
//! targets into single vectorised load operations, issuing one vector of up
//! to N line addresses per cycle. In the timing model the pipeline reduces
//! to: resolved target lines enter a queue (deduplicated against the
//! current bundle window), and each `issue` call drains up to N lines as
//! one vector prefetch.

use nvr_common::{Cycle, LineAddr};
use nvr_mem::MemorySystem;

/// The VMIG issue stage.
///
/// # Examples
///
/// ```
/// use nvr_core::Vmig;
/// use nvr_common::LineAddr;
///
/// let mut v = Vmig::new(16);
/// v.push(LineAddr::new(1));
/// v.push(LineAddr::new(1)); // deduplicated
/// v.push(LineAddr::new(2));
/// assert_eq!(v.pending(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Vmig {
    width: usize,
    queue: Vec<LineAddr>,
    /// Vector prefetch operations issued.
    vectors_issued: u64,
    /// Total lines carried by those vectors.
    lines_issued: u64,
    /// Lines dropped at issue by the residency filter.
    lines_filtered: u64,
    /// Lines deferred at issue because their DRAM channel's prefetch
    /// queue was full (per-channel back-pressure, not a drop).
    lines_deferred: u64,
}

impl Vmig {
    /// Creates a generator bundling up to `width` lines per vector.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "vector width must be non-zero");
        Vmig {
            width,
            queue: Vec::new(),
            vectors_issued: 0,
            lines_issued: 0,
            lines_filtered: 0,
            lines_deferred: 0,
        }
    }

    /// Queues one target line, deduplicating against queued lines.
    pub fn push(&mut self, line: LineAddr) {
        if !self.queue.contains(&line) {
            self.queue.push(line);
        }
    }

    /// Accepts one PIE-resolved vector bundle: the lines of up to `width`
    /// lanes' gather targets, deduplicated against the queue. This is the
    /// unit the VIGU synthesises into a single vector load operation, so it
    /// is where the vector/line statistics accrue; the [`Vmig::issue`]
    /// stage then trickles lines into the memory system as the speculative
    /// MSHR file frees.
    pub fn push_bundle<I: IntoIterator<Item = LineAddr>>(&mut self, lines: I) {
        let before = self.queue.len();
        for line in lines {
            self.push(line);
        }
        let added = (self.queue.len() - before) as u64;
        if added > 0 {
            self.vectors_issued += 1;
            self.lines_issued += added;
        }
    }

    /// Queues prefetch lines *without* vector-operation accounting — for
    /// index stream-ahead traffic that rides the issue queue for pacing
    /// but is not a PIE-resolved gather vector, so
    /// [`Vmig::mean_pack_width`] keeps measuring the packing efficiency
    /// of resolved targets only.
    pub fn push_stream<I: IntoIterator<Item = LineAddr>>(&mut self, lines: I) {
        for line in lines {
            self.push(line);
        }
    }

    /// Lines waiting to issue.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether any work is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Issues one vector (up to `width` lines) of prefetches at `now`,
    /// capped to the free MSHR count so elements back-pressure in the VIGU
    /// buffer rather than dropping. Returns the number of lines issued.
    ///
    /// Queued lines that are already resident (or in flight) on the NPU
    /// side are dropped without burning a vector lane — the VIGU probes
    /// the tag array before synthesising the operation, so redundant
    /// targets never crowd out fresh ones in the issue vector. The filter
    /// is skipped when fills also populate the NSB, because a redundant
    /// L2 line still wants its NSB promotion.
    ///
    /// Lines whose DRAM channel's prefetch queue is full are *deferred*,
    /// not dropped: they stay at the head of the VIGU buffer (order
    /// preserved) and retry next cycle — the VIGU paces on per-channel
    /// occupancy instead of pushing requests into a full queue where the
    /// backend would reject them.
    pub fn issue(&mut self, mem: &mut MemorySystem, now: Cycle, fill_nsb: bool) -> usize {
        if self.queue.is_empty() {
            return 0;
        }
        let cap = self.width.min(mem.prefetch_slots(now));
        if cap == 0 {
            return 0;
        }
        let mut taken = 0;
        let mut issued = 0;
        let mut deferred = Vec::new();
        while issued < cap && taken < self.queue.len() {
            let line = self.queue[taken];
            taken += 1;
            if !fill_nsb && mem.npu_side_contains(line) {
                self.lines_filtered += 1;
                continue;
            }
            // The channel gate only applies to lines that would actually
            // fetch: an on-chip line (possible in NSB mode, where the
            // residency filter above is skipped) needs at most an NSB
            // promotion and never touches the DRAM channel.
            if !mem.prefetch_channel_ready(line, now) && !mem.npu_side_contains(line) {
                self.lines_deferred += 1;
                deferred.push(line);
                continue;
            }
            mem.prefetch_line(line, now, fill_nsb);
            issued += 1;
        }
        self.queue.splice(..taken, deferred);
        issued
    }

    /// Queued lines dropped at issue because they were already resident or
    /// in flight (the VIGU's tag-probe filter).
    #[must_use]
    pub fn lines_filtered(&self) -> u64 {
        self.lines_filtered
    }

    /// Issue attempts deferred by per-channel queue back-pressure (the
    /// line stayed buffered and retried later).
    #[must_use]
    pub fn lines_deferred(&self) -> u64 {
        self.lines_deferred
    }

    /// Vector operations issued over the run.
    #[must_use]
    pub fn vectors_issued(&self) -> u64 {
        self.vectors_issued
    }

    /// Total lines carried.
    #[must_use]
    pub fn lines_issued(&self) -> u64 {
        self.lines_issued
    }

    /// Mean lines per vector (the packing efficiency of the VIGU).
    #[must_use]
    pub fn mean_pack_width(&self) -> f64 {
        if self.vectors_issued == 0 {
            0.0
        } else {
            self.lines_issued as f64 / self.vectors_issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_mem::MemoryConfig;

    #[test]
    fn bundles_account_at_pie_granularity() {
        let mut v = Vmig::new(4);
        v.push_bundle((0..4).map(LineAddr::new));
        v.push_bundle((4..10).map(LineAddr::new));
        assert_eq!(v.vectors_issued(), 2);
        assert_eq!(v.lines_issued(), 10);
        assert!((v.mean_pack_width() - 5.0).abs() < 1e-12);
        // The issue stage drains at most `width` lines per cycle.
        let mut mem = MemorySystem::new(MemoryConfig::default());
        assert_eq!(v.issue(&mut mem, 0, false), 4);
        assert_eq!(v.issue(&mut mem, 1, false), 4);
        assert_eq!(v.issue(&mut mem, 2, false), 2);
        assert_eq!(v.issue(&mut mem, 3, false), 0);
    }

    #[test]
    fn empty_bundle_not_counted() {
        let mut v = Vmig::new(4);
        v.push(LineAddr::new(1));
        v.push_bundle([LineAddr::new(1)]); // fully deduplicated
        assert_eq!(v.vectors_issued(), 0);
    }

    #[test]
    fn dedup_within_queue() {
        let mut v = Vmig::new(16);
        v.push(LineAddr::new(5));
        v.push(LineAddr::new(5));
        assert_eq!(v.pending(), 1);
    }

    #[test]
    fn backpressure_holds_queue() {
        let cfg = MemoryConfig {
            prefetch_mshrs: 1,
            ..MemoryConfig::default()
        };
        let mut mem = MemorySystem::new(cfg);
        let mut v = Vmig::new(4);
        v.push(LineAddr::new(1));
        v.push(LineAddr::new(2));
        // Only one speculative MSHR: the vector is capped to one line.
        assert_eq!(v.issue(&mut mem, 0, false), 1);
        // The file is full (line 1's fill pending): queue holds.
        v.push(LineAddr::new(3));
        assert_eq!(v.issue(&mut mem, 1, false), 0);
        assert_eq!(v.pending(), 2);
    }

    #[test]
    fn issue_filters_resident_lines() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut v = Vmig::new(4);
        // Make line 1 resident via a demand fill, then queue it plus a
        // fresh line: the resident one is dropped without a lane.
        let r = mem.demand_line(LineAddr::new(1), 0);
        v.push(LineAddr::new(1));
        v.push(LineAddr::new(2));
        let n = v.issue(&mut mem, r.ready_at + 1, false);
        assert_eq!(n, 1, "resident line filtered, fresh line issued");
        assert_eq!(v.lines_filtered(), 1);
        assert!(v.is_empty());
    }

    #[test]
    fn channel_backpressure_defers_lines_in_order() {
        use nvr_mem::DramConfig;
        let cfg = MemoryConfig {
            prefetch_mshrs: 64,
            dram: DramConfig {
                queue_depth: 2,
                ..DramConfig::default()
            },
            ..MemoryConfig::default()
        };
        let mut mem = MemorySystem::new(cfg);
        // Saturate the single channel's prefetch queue out-of-band.
        for i in 100..103u64 {
            mem.prefetch_line(LineAddr::new(i), 0, false);
        }
        let mut v = Vmig::new(4);
        v.push(LineAddr::new(1));
        v.push(LineAddr::new(2));
        // Channel full: nothing issues, the lines stay buffered in order.
        assert_eq!(v.issue(&mut mem, 0, false), 0);
        assert_eq!(v.pending(), 2);
        assert_eq!(v.lines_deferred(), 2);
        // Once the queue drains, the same lines issue.
        let later = 10 * DramConfig::default().line_transfer_cycles();
        assert_eq!(v.issue(&mut mem, later, false), 2);
        assert!(v.is_empty());
    }

    #[test]
    fn empty_issue_is_noop() {
        let mut v = Vmig::new(4);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        assert_eq!(v.issue(&mut mem, 0, false), 0);
        assert_eq!(v.vectors_issued(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_panics() {
        let _ = Vmig::new(0);
    }
}
