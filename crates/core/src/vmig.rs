//! VMIG: the Vectorisation Micro-Instruction Generator (§IV-F).
//!
//! A three-stage pipeline in hardware — IRU (instruction reconstruction),
//! PIE (parallel inference of `sparse_func` across 16 lanes using the VRF),
//! VIGU (vector instruction generation) — that bundles resolved prefetch
//! targets into single vectorised load operations, issuing one vector of up
//! to N line addresses per cycle. In the timing model the pipeline reduces
//! to: resolved target lines enter a queue (deduplicated against the
//! current bundle window), and each `issue` call drains up to N lines as
//! one vector prefetch.

use nvr_common::{Cycle, FlatMap, LineAddr};
use nvr_mem::MemorySystem;

/// The VMIG issue stage.
///
/// # Examples
///
/// ```
/// use nvr_core::Vmig;
/// use nvr_common::LineAddr;
///
/// let mut v = Vmig::new(16);
/// v.push(LineAddr::new(1));
/// v.push(LineAddr::new(1)); // deduplicated
/// v.push(LineAddr::new(2));
/// assert_eq!(v.pending(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Vmig {
    width: usize,
    /// Queued target lines in arrival order.
    queue: Vec<LineAddr>,
    /// Predicted-reuse score per queued line (0 for unscored traffic,
    /// e.g. index stream-ahead lines), keyed by line index. Doubles as
    /// the dedup set: membership here means the line is in `queue`, so a
    /// push is one probe instead of a queue scan.
    scores: FlatMap,
    /// DARE-style NSB admission threshold ([`crate::NvrConfig::nsb_admit_min_reuse`]):
    /// when non-zero, a line's full predicted-reuse score earns retention
    /// priority only once it reaches the threshold; lines below it are
    /// carried at score 1 (their one imminent use).
    nsb_admit: u32,
    /// Vector prefetch operations issued.
    vectors_issued: u64,
    /// Total lines carried by those vectors.
    lines_issued: u64,
    /// Lines dropped at issue by the residency filter.
    lines_filtered: u64,
    /// Lines deferred at issue because their DRAM channel's prefetch
    /// queue was full (per-channel back-pressure, not a drop).
    lines_deferred: u64,
}

impl Vmig {
    /// Creates a generator bundling up to `width` lines per vector.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "vector width must be non-zero");
        Vmig {
            width,
            queue: Vec::new(),
            scores: FlatMap::new(),
            nsb_admit: 0,
            vectors_issued: 0,
            lines_issued: 0,
            lines_filtered: 0,
            lines_deferred: 0,
        }
    }

    /// Queues one target line, deduplicating against queued lines.
    pub fn push(&mut self, line: LineAddr) {
        self.push_scored(line, 0);
    }

    /// Queues one target line with a predicted-reuse score. Deduplication
    /// keeps the *maximum* score seen for the line — a line wanted by two
    /// bundles is more reusable, not less.
    pub fn push_scored(&mut self, line: LineAddr, score: u32) {
        match self.scores.get(line.index()) {
            Some(old) => {
                if u64::from(score) > old {
                    self.scores.insert(line.index(), u64::from(score));
                }
            }
            None => {
                self.scores.insert(line.index(), u64::from(score));
                self.queue.push(line);
            }
        }
    }

    /// Sets the retention-priority threshold applied at issue
    /// ([`crate::NvrConfig::nsb_admit_min_reuse`]; 0 disables scoring
    /// entirely, reverting scored levels to LRU behaviour).
    pub fn set_nsb_admit(&mut self, admit: u32) {
        self.nsb_admit = admit;
    }

    /// Accepts one PIE-resolved vector bundle: the lines of up to `width`
    /// lanes' gather targets, deduplicated against the queue. This is the
    /// unit the VIGU synthesises into a single vector load operation, so it
    /// is where the vector/line statistics accrue; the [`Vmig::issue`]
    /// stage then trickles lines into the memory system as the speculative
    /// MSHR file frees.
    pub fn push_bundle<I: IntoIterator<Item = LineAddr>>(&mut self, lines: I) {
        self.push_bundle_scored(lines.into_iter().map(|l| (l, 0)));
    }

    /// [`Vmig::push_bundle`] with per-line predicted-reuse scores, as
    /// produced by the controller's [`crate::ReusePredictor`] over the
    /// window machinery's resolved targets.
    pub fn push_bundle_scored<I: IntoIterator<Item = (LineAddr, u32)>>(&mut self, lines: I) {
        let before = self.queue.len();
        for (line, score) in lines {
            self.push_scored(line, score);
        }
        let added = (self.queue.len() - before) as u64;
        if added > 0 {
            self.vectors_issued += 1;
            self.lines_issued += added;
        }
    }

    /// Queues prefetch lines *without* vector-operation accounting — for
    /// index stream-ahead traffic that rides the issue queue for pacing
    /// but is not a PIE-resolved gather vector, so
    /// [`Vmig::mean_pack_width`] keeps measuring the packing efficiency
    /// of resolved targets only.
    pub fn push_stream<I: IntoIterator<Item = LineAddr>>(&mut self, lines: I) {
        for line in lines {
            self.push(line);
        }
    }

    /// Lines waiting to issue.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether any work is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Issues one vector (up to `width` lines) of prefetches at `now`,
    /// capped to the free MSHR count so elements back-pressure in the VIGU
    /// buffer rather than dropping. Returns the number of lines issued.
    ///
    /// Queued lines that are already resident (or in flight) on the NPU
    /// side are dropped without burning a vector lane — the VIGU probes
    /// the tag array before synthesising the operation, so redundant
    /// targets never crowd out fresh ones in the issue vector. The filter
    /// is skipped when fills also populate the NSB, because a redundant
    /// L2 line still wants its NSB promotion.
    ///
    /// Lines whose DRAM channel's prefetch queue is full are *deferred*,
    /// not dropped: they stay at the head of the VIGU buffer (order
    /// preserved) and retry next cycle — the VIGU paces on per-channel
    /// occupancy instead of pushing requests into a full queue where the
    /// backend would reject them.
    pub fn issue(&mut self, mem: &mut MemorySystem, now: Cycle, fill_nsb: bool) -> usize {
        if self.queue.is_empty() {
            return 0;
        }
        let cap = self.width.min(mem.prefetch_slots(now));
        if cap == 0 {
            return 0;
        }
        let mut taken = 0;
        let mut issued = 0;
        // Deferred entries are compacted in place at the front of the queue
        // (`kept` trails `taken`, so the writes never clobber unread
        // entries) — the post-issue queue is deferred lines in order
        // followed by the untouched tail, with no per-call allocation.
        let mut kept = 0;
        // Channel-readiness memo for this call: a channel's answer only
        // changes when a line issues onto it, so a deferred run of
        // same-channel lines costs one queue walk instead of one each.
        const MEMO_CHANNELS: usize = 32;
        let mut chan_ready = [None::<bool>; MEMO_CHANNELS];
        while issued < cap && taken < self.queue.len() {
            let line = self.queue[taken];
            taken += 1;
            // The channel gate only applies to lines that would actually
            // fetch: an on-chip line (possible in NSB mode, where the
            // residency filter is skipped) needs at most an NSB promotion
            // and never touches the DRAM channel. In filtered mode a line
            // that survives the residency probe is known off-chip, so the
            // gate is the channel check alone.
            let ch = mem.channel_of(line);
            let ready = match chan_ready.get(ch).copied().flatten() {
                Some(r) => r,
                None => {
                    let r = mem.prefetch_channel_ready(line, now);
                    if let Some(slot) = chan_ready.get_mut(ch) {
                        *slot = Some(r);
                    }
                    r
                }
            };
            let deferred = if fill_nsb {
                !ready && !mem.npu_side_contains(line)
            } else {
                if mem.npu_side_contains(line) {
                    self.lines_filtered += 1;
                    self.scores.remove(line.index());
                    continue;
                }
                !ready
            };
            if deferred {
                self.lines_deferred += 1;
                self.queue[kept] = line;
                kept += 1;
                continue;
            }
            // nvr-lint: allow(overflow/lossy-cast) reason="scores map only ever stores u64::from(u32) values"
            let score = self.scores.remove(line.index()).map_or(0, |s| s as u32);
            // DARE-style admission: with an active threshold, a line's
            // predicted reuse earns retention priority only once it
            // clears the threshold; below it the line carries no score.
            // The two levels then see different floors. The NSB floor is
            // 1 — the one imminent demand the line was resolved for — so
            // every prefetch still fills the NSB (the paper's §IV-G
            // behaviour; streaming workloads keep their 2-cycle hits)
            // while demonstrated-reuse lines outrank the stream for
            // residency. The L2 gets the unfloored score: a scored L2
            // ranks below-threshold speculative lines level with its
            // demand-allocated ways (score 0) instead of letting a
            // blanket floor starve demand residency. The unscored path
            // (admission off) keeps sending zeros, preserving LRU
            // equivalence.
            let (pinned, nsb_score) = if self.nsb_admit > 0 {
                let pinned = if score >= self.nsb_admit { score } else { 0 };
                (pinned, pinned.max(1))
            } else {
                (score, score)
            };
            mem.prefetch_line_scored(line, now, fill_nsb, pinned, nsb_score);
            // The issue may have queued onto (or promoted within) this
            // line's channel: drop its memo entry.
            if let Some(slot) = chan_ready.get_mut(ch) {
                *slot = None;
            }
            issued += 1;
        }
        self.queue.drain(kept..taken);
        issued
    }

    /// Queued lines dropped at issue because they were already resident or
    /// in flight (the VIGU's tag-probe filter).
    #[must_use]
    pub fn lines_filtered(&self) -> u64 {
        self.lines_filtered
    }

    /// Issue attempts deferred by per-channel queue back-pressure (the
    /// line stayed buffered and retried later).
    #[must_use]
    pub fn lines_deferred(&self) -> u64 {
        self.lines_deferred
    }

    /// Vector operations issued over the run.
    #[must_use]
    pub fn vectors_issued(&self) -> u64 {
        self.vectors_issued
    }

    /// Total lines carried.
    #[must_use]
    pub fn lines_issued(&self) -> u64 {
        self.lines_issued
    }

    /// Mean lines per vector (the packing efficiency of the VIGU).
    #[must_use]
    pub fn mean_pack_width(&self) -> f64 {
        if self.vectors_issued == 0 {
            0.0
        } else {
            self.lines_issued as f64 / self.vectors_issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvr_mem::MemoryConfig;

    #[test]
    fn bundles_account_at_pie_granularity() {
        let mut v = Vmig::new(4);
        v.push_bundle((0..4).map(LineAddr::new));
        v.push_bundle((4..10).map(LineAddr::new));
        assert_eq!(v.vectors_issued(), 2);
        assert_eq!(v.lines_issued(), 10);
        assert!((v.mean_pack_width() - 5.0).abs() < 1e-12);
        // The issue stage drains at most `width` lines per cycle.
        let mut mem = MemorySystem::new(MemoryConfig::default());
        assert_eq!(v.issue(&mut mem, 0, false), 4);
        assert_eq!(v.issue(&mut mem, 1, false), 4);
        assert_eq!(v.issue(&mut mem, 2, false), 2);
        assert_eq!(v.issue(&mut mem, 3, false), 0);
    }

    #[test]
    fn empty_bundle_not_counted() {
        let mut v = Vmig::new(4);
        v.push(LineAddr::new(1));
        v.push_bundle([LineAddr::new(1)]); // fully deduplicated
        assert_eq!(v.vectors_issued(), 0);
    }

    #[test]
    fn dedup_within_queue() {
        let mut v = Vmig::new(16);
        v.push(LineAddr::new(5));
        v.push(LineAddr::new(5));
        assert_eq!(v.pending(), 1);
    }

    #[test]
    fn backpressure_holds_queue() {
        let cfg = MemoryConfig {
            prefetch_mshrs: 1,
            ..MemoryConfig::default()
        };
        let mut mem = MemorySystem::new(cfg);
        let mut v = Vmig::new(4);
        v.push(LineAddr::new(1));
        v.push(LineAddr::new(2));
        // Only one speculative MSHR: the vector is capped to one line.
        assert_eq!(v.issue(&mut mem, 0, false), 1);
        // The file is full (line 1's fill pending): queue holds.
        v.push(LineAddr::new(3));
        assert_eq!(v.issue(&mut mem, 1, false), 0);
        assert_eq!(v.pending(), 2);
    }

    #[test]
    fn issue_filters_resident_lines() {
        let mut mem = MemorySystem::new(MemoryConfig::default());
        let mut v = Vmig::new(4);
        // Make line 1 resident via a demand fill, then queue it plus a
        // fresh line: the resident one is dropped without a lane.
        let r = mem.demand_line(LineAddr::new(1), 0);
        v.push(LineAddr::new(1));
        v.push(LineAddr::new(2));
        let n = v.issue(&mut mem, r.ready_at + 1, false);
        assert_eq!(n, 1, "resident line filtered, fresh line issued");
        assert_eq!(v.lines_filtered(), 1);
        assert!(v.is_empty());
    }

    #[test]
    fn channel_backpressure_defers_lines_in_order() {
        use nvr_mem::DramConfig;
        let cfg = MemoryConfig {
            prefetch_mshrs: 64,
            dram: DramConfig {
                queue_depth: 2,
                ..DramConfig::default()
            },
            ..MemoryConfig::default()
        };
        let mut mem = MemorySystem::new(cfg);
        // Saturate the single channel's prefetch queue out-of-band.
        for i in 100..103u64 {
            mem.prefetch_line(LineAddr::new(i), 0, false);
        }
        let mut v = Vmig::new(4);
        v.push(LineAddr::new(1));
        v.push(LineAddr::new(2));
        // Channel full: nothing issues, the lines stay buffered in order.
        assert_eq!(v.issue(&mut mem, 0, false), 0);
        assert_eq!(v.pending(), 2);
        assert_eq!(v.lines_deferred(), 2);
        // Once the queue drains, the same lines issue.
        let later = 10 * DramConfig::default().line_transfer_cycles();
        assert_eq!(v.issue(&mut mem, later, false), 2);
        assert!(v.is_empty());
    }

    #[test]
    fn scored_dedup_keeps_max_score() {
        let mut v = Vmig::new(16);
        v.push_scored(LineAddr::new(5), 1);
        v.push_scored(LineAddr::new(5), 3);
        v.push_scored(LineAddr::new(5), 2);
        assert_eq!(v.pending(), 1);
        assert_eq!(v.queue[0], LineAddr::new(5));
        assert_eq!(v.scores.get(LineAddr::new(5).index()), Some(3));
    }

    #[test]
    fn admission_threshold_grants_retention_priority_not_residency() {
        // Every prefetch still fills the NSB (§IV-G — streaming workloads
        // keep their near-NPU hits); the threshold decides whose *score*
        // counts for retention. A one-line scored NSB makes the ranking
        // observable: the admitted hub holds residency and the
        // below-threshold line — carried at score 1, its single imminent
        // use — is rejected (shrink) and lands in the L2 only.
        let nsb = nvr_mem::CacheConfig {
            name: "NSB",
            size_bytes: 64,
            ways: 1,
            hit_latency: 2,
            mshr_entries: 16,
            policy: nvr_mem::RetentionPolicy::ScoredReuse,
        };
        let cfg = MemoryConfig::default().with_nsb(nsb);
        let mut mem = MemorySystem::new(cfg);
        let mut v = Vmig::new(16);
        v.set_nsb_admit(2);
        v.push_scored(LineAddr::new(2), 3); // clears the threshold
        assert_eq!(v.issue(&mut mem, 0, true), 1);
        // Wait out the hub's fill so victim selection ranks on score.
        let later = 1000;
        v.push_scored(LineAddr::new(1), 0); // below threshold
        assert_eq!(v.issue(&mut mem, later, true), 1);
        let s = mem.stats();
        let nsb = s.nsb.as_ref().expect("nsb");
        assert_eq!(s.l2.prefetch_issued.get(), 2, "both lines fill the L2");
        assert_eq!(nsb.prefetch_issued.get(), 1, "the hub holds the NSB");
        assert_eq!(nsb.retention_rejected.get(), 1, "the cold fill shrank");
    }

    #[test]
    fn zero_threshold_admits_everything() {
        let cfg = MemoryConfig::default().with_nsb(crate::nsb_scored(16));
        let mut mem = MemorySystem::new(cfg);
        let mut v = Vmig::new(16);
        v.push_scored(LineAddr::new(1), 0);
        v.push_scored(LineAddr::new(2), 5);
        assert_eq!(v.issue(&mut mem, 0, true), 2);
        assert_eq!(
            mem.stats().nsb.as_ref().expect("nsb").prefetch_issued.get(),
            2
        );
    }

    #[test]
    fn empty_issue_is_noop() {
        let mut v = Vmig::new(4);
        let mut mem = MemorySystem::new(MemoryConfig::default());
        assert_eq!(v.issue(&mut mem, 0, false), 0);
        assert_eq!(v.vectors_issued(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_panics() {
        let _ = Vmig::new(0);
    }
}
