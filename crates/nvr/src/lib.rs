//! # NVR — Vector Runahead on NPUs for Sparse Memory Access
//!
//! A clean-room, cycle-level reproduction of the DAC 2025 paper *NVR:
//! Vector Runahead on NPUs for Sparse Memory Access* (Wang, Zhao, et al.):
//! a Gemmini-like NPU timing model, a non-blocking cache hierarchy with an
//! optional in-NPU speculative buffer (NSB), the NVR prefetcher itself
//! (snoopers, stride detector, loop-bound detector, sparse-chain detector,
//! VMIG), three general-purpose baselines (stream, IMP, DVR), the paper's
//! eight sparse workloads, and an LLM system-level model — plus experiment
//! drivers regenerating every table and figure of the evaluation.
//!
//! This facade re-exports the workspace crates under stable names.
//!
//! # Quickstart
//!
//! ```
//! use nvr::prelude::*;
//!
//! // Build a sparse-attention workload and compare no-prefetch vs NVR.
//! let spec = WorkloadSpec::tiny(DataWidth::Int8, 42);
//! let program = WorkloadId::Ds.build(&spec);
//! let baseline = run_system(&program, &MemoryConfig::default(), SystemKind::InOrder);
//! let nvr = run_system(&program, &MemoryConfig::default(), SystemKind::Nvr);
//! assert!(nvr.result.total_cycles < baseline.result.total_cycles);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use nvr_common as common;
pub use nvr_core as core;
pub use nvr_llm as llm;
pub use nvr_mem as mem;
pub use nvr_npu as npu;
pub use nvr_prefetch as prefetch;
pub use nvr_sim as sim;
pub use nvr_sparse as sparse;
pub use nvr_trace as trace;
pub use nvr_workloads as workloads;

/// The most commonly used items, for `use nvr::prelude::*`.
pub mod prelude {
    pub use nvr_common::{Addr, Cycle, DataWidth, LineAddr, Pcg32, Region};
    pub use nvr_core::{nsb_config, overhead_report, LifetimeTracker, NvrConfig, NvrPrefetcher};
    pub use nvr_llm::LlmConfig;
    pub use nvr_mem::{CacheConfig, DramConfig, MemoryConfig, MemorySystem, PrefetchLifeEvent};
    pub use nvr_npu::{ExecMode, NpuConfig, NpuEngine, RunResult};
    pub use nvr_prefetch::{
        DvrPrefetcher, ImpPrefetcher, NullPrefetcher, Prefetcher, StreamPrefetcher,
        TimelinessReport,
    };
    pub use nvr_sim::figures::FigureId;
    pub use nvr_sim::sweep::pool;
    pub use nvr_sim::{
        coverage, pollution, run_sweep, run_system, timeliness_split, RunOutcome, SweepJob,
        SweepResults, SweepSpec, SystemKind,
    };
    pub use nvr_trace::{MemoryImage, NpuProgram, SnoopState, SparseFunc, TileOp};
    pub use nvr_workloads::{
        PointcloudParams, Scale, TileOrder, VoxelOrder, WorkloadId, WorkloadSpec,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links() {
        use crate::prelude::*;
        let cfg = NvrConfig::default();
        assert!(cfg.validate().is_ok());
        let report = overhead_report(16, 16);
        assert!(report.total_bits() > 0);
    }
}
