//! Workspace-wiring smoke test: drives the same end-to-end flow as
//! `examples/quickstart.rs` purely through the `nvr::prelude` facade
//! re-exports, so a broken re-export or a mis-wired inter-crate
//! dependency fails `cargo test` rather than only `cargo run --example`.

use nvr::prelude::*;

#[test]
fn quickstart_flow_through_prelude() {
    // Tiny spec keeps this under a second; same workload family and system
    // sweep as the quickstart example.
    let spec = WorkloadSpec::tiny(DataWidth::Fp16, 42);
    let program = WorkloadId::Ds.build(&spec);
    let stats = program.stats();
    assert!(stats.tiles > 0, "workload generator produced no tiles");
    assert!(stats.gather_elems > 0, "sparse workload has no gathers");

    let mem_cfg = MemoryConfig::default();
    let baseline = run_system(&program, &mem_cfg, SystemKind::InOrder);
    assert!(baseline.result.total_cycles > 0);

    for system in SystemKind::ALL {
        let o = run_system(&program, &mem_cfg, system);
        assert!(
            o.result.total_cycles > 0,
            "{} ran zero cycles",
            system.label()
        );
        assert!(o.stall_cycles() <= o.result.total_cycles);
        let miss = o.result.element_miss_rate();
        assert!(
            (0.0..=1.0).contains(&miss),
            "{} miss rate {miss}",
            system.label()
        );
        let acc = o.result.mem.prefetch_accuracy();
        assert!(
            (0.0..=1.0).contains(&acc),
            "{} accuracy {acc}",
            system.label()
        );
    }

    // The headline claim of the quickstart: NVR beats the in-order baseline.
    let nvr = run_system(&program, &mem_cfg, SystemKind::Nvr);
    assert!(
        nvr.result.total_cycles < baseline.result.total_cycles,
        "NVR ({}) should beat the in-order baseline ({})",
        nvr.result.total_cycles,
        baseline.result.total_cycles
    );

    // Facade modules are reachable under their stable names.
    let report = overhead_report(16, 16);
    assert!(report.total_bits() > 0);
    assert!(NvrConfig::default().validate().is_ok());
    assert!(LlmConfig::default().validate().is_ok());
}
