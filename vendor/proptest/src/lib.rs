//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no network access, so the
//! real proptest cannot be fetched from a registry. This shim implements
//! the small slice of its API that the `tests/props.rs` suites use:
//!
//! - the `proptest! { #[test] fn name(arg in strategy, ...) { .. } }` macro
//! - range strategies (`0u64..1 << 40`, `0usize..=100`, `0.0f32..1.0`)
//! - `any::<T>()` for primitive integers
//! - `prop::collection::vec(strategy, size_range)`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//!
//! Unlike the real crate there is no shrinking: each test runs a fixed
//! number of cases (`PROPTEST_CASES` env var, default 64) from an RNG
//! seeded deterministically from the test name, so failures reproduce
//! exactly. The failing case's inputs are printed before the panic is
//! re-raised.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator; seeded per-test from the test name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name keeps runs reproducible across
        // processes without any global ordering assumptions.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for property sampling.
        self.next_u64() % bound
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-suite runner config; only the case count is modelled.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// `PROPTEST_CASES` env var, default 64.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A value generator. The stub equivalent of proptest's `Strategy`,
/// minus shrinking.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// `any::<T>()` — uniform over the whole domain of `T`.
pub struct AnyStrategy<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        vec_strategy_len_check(&size);
        VecStrategy { element, size }
    }

    fn vec_strategy_len_check(size: &Range<usize>) {
        assert!(size.start < size.end, "empty vec length range");
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };

    /// Mirrors `proptest::prelude::prop` so `prop::collection::vec` works.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __inputs = format!(
                    concat!("case {}: ", $(stringify!($arg), " = {:?} ",)+),
                    __case, $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body })
                );
                if let Err(panic) = __outcome {
                    eprintln!("[proptest stub] {} failed at {}", stringify!($name), __inputs);
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..32, y in 0usize..=100, f in 0.0f32..1.0) {
            prop_assert!((3..32).contains(&x));
            prop_assert!(y <= 100);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..10, 2..40)) {
            prop_assert!(v.len() >= 2 && v.len() < 40);
            prop_assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
