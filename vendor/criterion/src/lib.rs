//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! This workspace builds with no network access, so the real criterion
//! cannot be fetched from a registry. The shim implements exactly the
//! surface the `crates/bench/benches/*` files use — `Criterion::default()
//! .sample_size(n)`, `bench_function`, `benchmark_group`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros — and reports
//! mean wall-clock time per iteration on stdout instead of criterion's
//! statistical analysis/HTML output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // One warm-up pass, then `sample_size` timed iterations in a single
    // batch — enough for a smoke-level "did it regress by 10x" signal.
    let mut warmup = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);

    let mut bencher = Bencher {
        iterations: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iterations.max(1));
    println!("bench {label:<40} {per_iter:>12} ns/iter ({sample_size} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = trivial
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
