//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! This workspace builds with no network access, so the real criterion
//! cannot be fetched from a registry. The shim implements exactly the
//! surface the `crates/bench/benches/*` files use — `Criterion::default()
//! .sample_size(n)`, `bench_function`, `benchmark_group`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros — and reports
//! mean/p50/p95 wall-clock time per iteration on stdout instead of
//! criterion's full statistical analysis/HTML output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set.
fn percentile(sorted: &[u128], pct: usize) -> u128 {
    debug_assert!(!sorted.is_empty());
    let rank = (pct * sorted.len()).div_ceil(100);
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // One warm-up pass, then `sample_size` individually timed samples so
    // the report carries tail statistics (p50/p95) alongside the mean —
    // a regression that only shows as jitter is invisible to a mean.
    let mut warmup = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);

    let mut samples: Vec<u128> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_nanos());
    }
    samples.sort_unstable();
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    let p50 = percentile(&samples, 50);
    let p95 = percentile(&samples, 95);
    println!(
        "bench {label:<40} mean {mean:>12} ns/iter  p50 {p50:>12}  p95 {p95:>12} ({sample_size} samples)"
    );
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u128> = (1..=100).collect();
        assert_eq!(percentile(&s, 50), 50);
        assert_eq!(percentile(&s, 95), 95);
        assert_eq!(percentile(&s, 100), 100);
        assert_eq!(percentile(&[42], 50), 42);
        assert_eq!(percentile(&[42], 95), 42);
        assert_eq!(percentile(&[7, 9], 95), 9);
    }

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = trivial
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
