//! Mixture-of-experts routing: the block-friendly outlier.
//!
//! Switch-Transformer routing gathers *contiguous* expert-weight blocks, so
//! even a plain stream prefetcher does reasonably well — the paper calls ST
//! out as the workload with notably lower miss ratios (§V-B). This example
//! contrasts it against the scattered Double-Sparsity pattern.
//!
//! ```sh
//! cargo run --release --example moe_routing
//! ```

use nvr::prelude::*;

fn main() {
    let mem_cfg = MemoryConfig::default();
    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>11}",
        "wl", "system", "cycles", "speedup", "miss rate"
    );
    for workload in [WorkloadId::St, WorkloadId::Ds] {
        let spec = WorkloadSpec::new(DataWidth::Int8, 3);
        let program = workload.build(&spec);
        let baseline = run_system(&program, &mem_cfg, SystemKind::InOrder);
        for system in [SystemKind::InOrder, SystemKind::Stream, SystemKind::Nvr] {
            let o = run_system(&program, &mem_cfg, system);
            println!(
                "{:>6} {:>8} {:>12} {:>9.2}x {:>10.1}%",
                workload.short(),
                system.label(),
                o.result.total_cycles,
                baseline.result.total_cycles as f64 / o.result.total_cycles as f64,
                100.0 * o.result.element_miss_rate(),
            );
        }
        println!();
    }
    println!(
        "ST's block-contiguous expert weights reward even simple stream\n\
         prefetching; DS's scattered top-k gathers need runahead."
    );
}
