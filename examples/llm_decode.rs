//! LLM decode throughput vs off-chip bandwidth (the paper's Fig. 8c).
//!
//! Measures the sparse KV-gather cycles of a decode step through the cache
//! simulator at several bandwidth points, folds them into the roofline
//! model, and prints baseline-vs-NVR curves.
//!
//! ```sh
//! cargo run --release --example llm_decode
//! ```

use nvr::llm::{av_program, decode_throughput, qkt_program};
use nvr::prelude::*;

fn main() {
    let cfg = LlmConfig::default();
    println!(
        "decoder: {} hidden, {} layers, {} heads, 1/{} KV sparsity, batch {}\n",
        cfg.hidden, cfg.layers, cfg.heads, cfg.kv_keep_ratio, cfg.decode_batch
    );
    let l = 1024;
    println!("sequence length {l}; tokens per mega-cycle:");
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "B (B/cyc)", "baseline", "with NVR", "gain"
    );
    for bytes_per_cycle in [4u64, 8, 16, 32, 64, 128] {
        let mem_cfg = MemoryConfig::default().with_dram(DramConfig {
            bytes_per_cycle,
            ..DramConfig::default()
        });
        let mut tput = [0.0f64; 2];
        for (i, system) in [SystemKind::InOrder, SystemKind::Nvr]
            .into_iter()
            .enumerate()
        {
            let qkt = run_system(&qkt_program(&cfg, l, 1), &mem_cfg, system);
            let av = run_system(&av_program(&cfg, l, 1), &mem_cfg, system);
            let per_step = (qkt.result.total_cycles + av.result.total_cycles) as f64 / 48.0
                * cfg.heads as f64
                * cfg.layers as f64;
            tput[i] = decode_throughput(&cfg, l, bytes_per_cycle, per_step).tokens_per_mcycle;
        }
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>7.0}%",
            bytes_per_cycle,
            tput[0],
            tput[1],
            100.0 * (tput[1] / tput[0] - 1.0)
        );
    }
    println!("\ndecode is IO-bound: NVR's gather coverage translates into tokens/s.");
}
