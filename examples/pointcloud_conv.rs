//! Point-cloud sparse convolution: two-level indirect chains.
//!
//! MinkowskiNet-style kernels resolve gather targets through a voxel hash
//! table — a chain no affine-pattern prefetcher can learn. This example
//! shows IMP failing to lock while the runahead prefetchers (DVR, NVR)
//! execute the chain speculatively.
//!
//! ```sh
//! cargo run --release --example pointcloud_conv
//! ```

use nvr::prelude::*;

fn main() {
    let mem_cfg = MemoryConfig::default();
    for workload in [WorkloadId::Mk, WorkloadId::Scn] {
        let spec = WorkloadSpec::new(DataWidth::Int8, 11);
        let program = workload.build(&spec);
        println!(
            "{} ({}) — {} gathers through the voxel hash table",
            workload.name(),
            workload.short(),
            program.stats().gather_elems
        );
        let baseline = run_system(&program, &mem_cfg, SystemKind::InOrder);
        let base_misses = baseline.result.mem.l2.demand_misses.get();
        println!(
            "{:>8} {:>12} {:>10} {:>10} {:>10}",
            "system", "cycles", "speedup", "coverage", "accuracy"
        );
        for system in [
            SystemKind::InOrder,
            SystemKind::Stream,
            SystemKind::Imp,
            SystemKind::Dvr,
            SystemKind::Nvr,
        ] {
            let o = run_system(&program, &mem_cfg, system);
            println!(
                "{:>8} {:>12} {:>9.2}x {:>9.2} {:>9.2}",
                system.label(),
                o.result.total_cycles,
                baseline.result.total_cycles as f64 / o.result.total_cycles as f64,
                nvr::sim::coverage(base_misses, o.result.mem.l2.demand_misses.get()),
                o.result.mem.prefetch_accuracy(),
            );
        }
        println!();
    }
    println!(
        "IMP cannot learn the non-affine bucket->slot->row chain, so its\n\
         coverage stays near the stream-only floor; runahead executes the\n\
         actual probes and covers both levels."
    );
}
