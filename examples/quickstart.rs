//! Quickstart: build one sparse workload and compare the paper's six
//! Fig. 5 systems plus the NSB-backed NVR configuration on it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nvr::prelude::*;

fn main() {
    // Double Sparsity (sparse LLM attention), FP16 operands.
    let spec = WorkloadSpec::new(DataWidth::Fp16, 42);
    let program = WorkloadId::Ds.build(&spec);
    let stats = program.stats();
    println!(
        "workload: {} — {} tiles, {} gathers, {} compute cycles (data-ready bound)\n",
        program.name, stats.tiles, stats.gather_elems, stats.compute_cycles
    );

    let mem_cfg = MemoryConfig::default();
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>9} {:>10}",
        "system", "cycles", "stall", "speedup", "miss%", "accuracy"
    );
    let baseline = run_system(&program, &mem_cfg, SystemKind::InOrder);
    for system in SystemKind::ALL {
        let o = run_system(&program, &mem_cfg, system);
        println!(
            "{:>8} {:>12} {:>12} {:>9.2}x {:>8.1}% {:>9.2}",
            system.label(),
            o.result.total_cycles,
            o.stall_cycles(),
            baseline.result.total_cycles as f64 / o.result.total_cycles as f64,
            100.0 * o.result.element_miss_rate(),
            o.result.mem.prefetch_accuracy(),
        );
    }
    println!("\nlower stall = less time blocked on cache misses; the NVR rows should lead.");
}
