//! Sparse attention: the paper's motivating experiment (Fig. 1b).
//!
//! Sweeps the Double-Sparsity keep ratio and shows that, without
//! prefetching, a 16x parameter reduction buys far less than 16x actual
//! speedup — and that NVR recovers most of the lost headroom.
//!
//! ```sh
//! cargo run --release --example sparse_attention
//! ```

use nvr::prelude::*;
use nvr::workloads::double_sparsity;

fn main() {
    let mem_cfg = MemoryConfig::default();
    println!("Double Sparsity keep-ratio sweep (FP16, in-order NPU vs NVR)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "reduction", "InO cycles", "InO speedup", "NVR cycles", "NVR speedup"
    );

    let mut dense_ino = None;
    let mut dense_nvr = None;
    for ratio in [1usize, 2, 4, 8, 16] {
        let spec = WorkloadSpec::new(DataWidth::Fp16, 7);
        let program = double_sparsity::build_with_ratio(&spec, ratio);

        let ino = run_system(&program, &mem_cfg, SystemKind::InOrder);
        let nvr = run_system(&program, &mem_cfg, SystemKind::Nvr);
        let d_ino = *dense_ino.get_or_insert(ino.result.total_cycles);
        let d_nvr = *dense_nvr.get_or_insert(nvr.result.total_cycles);

        println!(
            "{:>9}x {:>12} {:>11.2}x {:>12} {:>11.2}x",
            ratio,
            ino.result.total_cycles,
            d_ino as f64 / ino.result.total_cycles as f64,
            nvr.result.total_cycles,
            d_nvr as f64 / nvr.result.total_cycles as f64,
        );
    }
    println!(
        "\nthe InO speedup saturates well below the parameter reduction — the\n\
         cache misses of the surviving irregular gathers eat the algorithmic\n\
         gain (the paper's Fig. 1b); NVR's speedup tracks the reduction much\n\
         more closely."
    );
}
