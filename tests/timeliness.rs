//! Exact-count checks of the prefetch lifetime pipeline: a scripted
//! memory-system trace whose timely / late / evicted-unused outcomes are
//! known in advance, measured through the same `PrefetchLifeEvent` log and
//! `LifetimeTracker` the NVR controller uses.

use nvr::core::LifetimeTracker;
use nvr::mem::{AccessOutcome, MemoryConfig, MemorySystem, PrefetchOutcome};
use nvr::prelude::*;

fn issue(mem: &mut MemorySystem, line: LineAddr, now: Cycle) -> Cycle {
    match mem.prefetch_line(line, now, false) {
        PrefetchOutcome::Issued { fill_done } => fill_done,
        other => panic!("expected issue for {line}, got {other:?}"),
    }
}

#[test]
fn scripted_trace_has_exact_outcome_counts() {
    let cfg = MemoryConfig::default();
    let sets = cfg.l2.sets();
    let mut mem = MemorySystem::new(cfg);
    mem.enable_prefetch_life_log();
    let mut tracker = LifetimeTracker::new(64);

    // 1. Timely: prefetched at 0, demanded well after the fill.
    let timely_line = LineAddr::new(1);
    let fill_timely = issue(&mut mem, timely_line, 0);
    let r = mem.demand_line(timely_line, fill_timely + 10);
    assert!(r.ready_at >= fill_timely);

    // 2. Late: prefetched at 0, demanded mid-fill (merges into the MSHR).
    let late_line = LineAddr::new(2);
    let fill_late = issue(&mut mem, late_line, 0);
    mem.demand_line(late_line, fill_late / 2);

    // 3. Evicted unused: fill one L2 set with ways + 1 prefetched lines;
    // the first one is evicted without ever being demanded.
    let ways = mem.config().l2.ways as usize;
    let base = 3u64;
    for k in 0..=(ways as u64) {
        issue(&mut mem, LineAddr::new(base + k * sets), 0);
    }

    tracker.drain(&mut mem);
    let report = tracker.report();
    assert_eq!(report.timely, 1, "exactly the one post-fill demand");
    assert_eq!(report.late, 1, "exactly the one mid-fill demand");
    assert_eq!(report.evicted_unused, 1, "exactly the one way overflow");
    // The remaining same-set prefetches are still outstanding.
    assert_eq!(report.unresolved, ways as u64);
    assert_eq!(tracker.outstanding(), ways);

    // Slack is measured issue→first-use, per line.
    assert_eq!(report.slack.count(), 2);
    assert_eq!(report.slack.sum(), (fill_timely + 10) + fill_late / 2);
    assert_eq!(report.slack.max(), fill_timely + 10);
}

#[test]
fn redundant_prefetches_do_not_enter_the_log() {
    let mut mem = MemorySystem::new(MemoryConfig::default());
    mem.enable_prefetch_life_log();
    let mut tracker = LifetimeTracker::new(8);

    let line = LineAddr::new(7);
    let fill = issue(&mut mem, line, 0);
    // A second prefetch of the same line is redundant, not a new life.
    assert_eq!(
        mem.prefetch_line(line, 1, false),
        PrefetchOutcome::Redundant
    );
    mem.demand_line(line, fill + 1);

    tracker.drain(&mut mem);
    let report = tracker.report();
    assert_eq!(report.timely, 1);
    assert_eq!(report.slack.count(), 1);
    assert_eq!(report.slack.sum(), fill + 1, "slack from the first issue");
}

#[test]
fn nsb_hits_count_as_first_use() {
    // With an NSB, demands are satisfied without ever probing the L2 —
    // the lifetime log must still see the consumption, or every consumed
    // prefetch would later be misread as an unused eviction (and the
    // usefulness throttle would falsely collapse the lookahead depth).
    let cfg = MemoryConfig::default().with_nsb(CacheConfig::nsb_default());
    let mut mem = MemorySystem::new(cfg);
    mem.enable_prefetch_life_log();
    let mut tracker = LifetimeTracker::new(8);

    let line = LineAddr::new(5);
    let fill = issue_nsb(&mut mem, line);
    let r = mem.demand_line(line, fill + 1);
    assert_eq!(r.outcome, AccessOutcome::NsbHit, "demand never reaches L2");

    tracker.drain(&mut mem);
    let report = tracker.report();
    assert_eq!(report.timely, 1, "NSB hit recorded as first use");
    assert_eq!(report.evicted_unused, 0);
    assert_eq!(report.unresolved, 0);
}

fn issue_nsb(mem: &mut MemorySystem, line: LineAddr) -> Cycle {
    match mem.prefetch_line(line, 0, true) {
        PrefetchOutcome::Issued { fill_done } => fill_done,
        other => panic!("expected issue, got {other:?}"),
    }
}

#[test]
fn nvr_run_report_is_consistent_with_l2_counters() {
    // On a real NVR run, the tracker's measured outcomes must agree with
    // the L2's aggregate prefetch counters: every used prefetch the
    // tracker saw was counted useful, and late is bounded by the L2's
    // prefetch_late (the L2 also counts lives begun before the log could
    // resolve them).
    let spec = WorkloadSpec::tiny(DataWidth::Fp16, 11);
    let program = WorkloadId::Gcn.build(&spec);
    let outcome = run_system(&program, &MemoryConfig::default(), SystemKind::Nvr);
    let t = outcome.timeliness.expect("NVR reports timeliness");
    let l2 = &outcome.result.mem.l2;
    assert!(t.used() > 0, "GCN runahead must land used prefetches");
    assert!(
        t.used() <= l2.prefetch_useful.get(),
        "tracker used {} exceeds L2 useful {}",
        t.used(),
        l2.prefetch_useful.get()
    );
    assert!(
        t.late <= l2.prefetch_late.get(),
        "tracker late {} exceeds L2 late {}",
        t.late,
        l2.prefetch_late.get()
    );
    assert_eq!(t.slack.count(), t.used());
    assert!(t.slack.mean() > 0.0);
}
