//! Speedup-regression floors: the tiny-scale 8-workload x {InO, NVR,
//! NVR+NSB} grid must never drop below the committed per-workload
//! speedups in `tests/speedup_floors.toml`.
//!
//! The floors are measured values minus a ~5% tolerance, so a retention
//! or scheduling change that silently trades one workload's speedup for
//! another's fails here with the exact workload and number. The floors
//! file documents the update procedure; floors only move with a
//! justified commit, never to make a red run green.

use std::collections::BTreeMap;

use nvr::prelude::*;
use nvr::sim::sweep::DEFAULT_SEED;

/// Per-workload floors parsed from `speedup_floors.toml`.
#[derive(Debug, Default)]
struct Floors {
    /// `short -> (nvr_floor, nvr_nsb_floor)`.
    by_workload: BTreeMap<String, (f64, f64)>,
}

/// Hand-rolled parser for the committed floors table: `[SHORT]` section
/// headers and `key = value` float lines (the workspace vendors no toml
/// crate, and the file deliberately uses nothing fancier).
fn parse_floors(text: &str) -> Floors {
    let mut floors = Floors::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_owned();
            floors.by_workload.entry(section.clone()).or_default();
            continue;
        }
        let (key, value) = line.split_once('=').unwrap_or_else(|| {
            panic!("speedup_floors.toml: line {line:?} is neither section nor key = value")
        });
        let value: f64 = value
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("speedup_floors.toml: bad float in {line:?}: {e}"));
        assert!(!section.is_empty(), "key {line:?} before any [section]");
        let entry = floors
            .by_workload
            .get_mut(&section)
            .expect("section exists");
        match key.trim() {
            "nvr" => entry.0 = value,
            "nvr_nsb" => entry.1 = value,
            other => panic!("speedup_floors.toml: unknown key `{other}` in [{section}]"),
        }
    }
    floors
}

fn committed_floors() -> Floors {
    let text = include_str!("speedup_floors.toml");
    parse_floors(text)
}

#[test]
fn floors_file_covers_every_workload_exactly_once() {
    let floors = committed_floors();
    let expected: Vec<&str> = WorkloadId::ALL.iter().map(|w| w.short()).collect();
    let present: Vec<&str> = floors.by_workload.keys().map(String::as_str).collect();
    assert_eq!(
        present, expected,
        "speedup_floors.toml sections must be exactly the workload shorts, sorted"
    );
    for (wl, (nvr, nsb)) in &floors.by_workload {
        assert!(*nvr > 1.0, "[{wl}] nvr floor {nvr} not a speedup");
        assert!(*nsb > 1.0, "[{wl}] nvr_nsb floor {nsb} not a speedup");
    }
}

#[test]
fn tiny_grid_meets_committed_floors() {
    let floors = committed_floors();
    let mut failures = Vec::new();
    for &workload in &WorkloadId::ALL {
        let spec = WorkloadSpec {
            width: DataWidth::Fp16,
            seed: DEFAULT_SEED,
            scale: Scale::Tiny,
            order: TileOrder::Natural,
        };
        let program = workload.build(&spec);
        let cfg = MemoryConfig::default();
        let ino = run_system(&program, &cfg, SystemKind::InOrder)
            .result
            .total_cycles;
        let (nvr_floor, nsb_floor) = floors.by_workload[workload.short()];
        for (system, floor) in [
            (SystemKind::Nvr, nvr_floor),
            (SystemKind::NvrNsb, nsb_floor),
        ] {
            let cycles = run_system(&program, &cfg, system).result.total_cycles;
            let speedup = ino as f64 / cycles.max(1) as f64;
            if speedup < floor {
                failures.push(format!(
                    "{} {}: speedup {speedup:.3} below floor {floor} \
                     (InO {ino}, {} {cycles})",
                    workload.short(),
                    system.label(),
                    system.label(),
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "speedup floors violated:\n{}\nSee tests/speedup_floors.toml for the update procedure.",
        failures.join("\n")
    );
}
