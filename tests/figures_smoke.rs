//! Smoke tests of the figure drivers at test scale: each produces data of
//! the right shape and renders without panicking.

use nvr::sim::figures;
use nvr::workloads::{Scale, WorkloadId};

#[test]
fn fig1b_renders() {
    let data = figures::fig1b::run(Scale::Tiny, 1);
    assert_eq!(data.points.len(), 5);
    let text = data.to_string();
    assert!(text.contains("16x"));
    assert!(text.contains("speedup"));
}

#[test]
fn fig6_subset_renders() {
    let data = figures::fig6::run_with_workloads(Scale::Tiny, 2, &[WorkloadId::H2o]);
    assert_eq!(data.cells.len(), 5); // one workload x five prefetchers
    assert_eq!(data.movement.len(), 3);
    let text = data.to_string();
    assert!(text.contains("accuracy"));
    assert!(text.contains("NVR+NSB"));
    assert!(text.contains("channel_util"));
}

#[test]
fn fig7b_subset_renders() {
    let data = figures::fig7b::run_jobs_with_workloads(Scale::Tiny, 2, 2, &[WorkloadId::Ds]);
    assert_eq!(data.cells.len(), 9); // 3 channel counts x 3 systems
    let text = data.to_string();
    assert!(text.contains("channel scaling"));
    assert!(text.contains("qd p95"));
}

#[test]
fn fig9_subset_renders() {
    let data = figures::fig9::run_subset(Scale::Tiny, 3, &[4, 16], &[64, 256]);
    assert_eq!(data.cells.len(), 4);
    let text = data.to_string();
    assert!(text.contains("NSB"));
}

#[test]
fn table1_matches_paper_fields() {
    let data = figures::table1::run();
    let text = data.to_string();
    for name in ["SD", "SCD", "LBD", "VMIG", "Snooper"] {
        assert!(text.contains(name), "missing {name}");
    }
    assert_eq!(data.report.sd_bits, 1808);
}

#[test]
fn table2_lists_all_workloads() {
    let text = figures::table2::run().to_string();
    for w in WorkloadId::ALL {
        assert!(text.contains(w.name()), "missing {}", w.name());
    }
}

#[test]
fn headline_subset_is_positive() {
    let h = figures::headline::run_with_workloads(Scale::Tiny, 4, &[WorkloadId::Ds]);
    assert!(h.speedup_vs_no_prefetch > 1.0);
    assert!(h.to_string().contains("speedup"));
}
