//! Property-based integration tests: invariants of the prefetcher/engine
//! stack over randomly generated programs.

use proptest::prelude::*;

use nvr::prelude::*;
use nvr::trace::GatherDesc;

/// Builds a random affine-gather program from proptest-chosen parameters.
fn random_program(tiles: usize, per_tile: usize, row_bytes: u64, seed: u64) -> NpuProgram {
    let mut rng = Pcg32::seed_from_u64(seed);
    let index_base = Addr::new(0x10_0000);
    let n = tiles * per_tile;
    let indices: Vec<u32> = (0..n).map(|_| rng.gen_range(1 << 16) as u32).collect();
    let mut image = MemoryImage::new();
    image.add_u32_segment(index_base, indices);
    let func = SparseFunc::Affine {
        ia_base: Addr::new(0x1_0000_0000),
        row_bytes,
    };
    let tiles: Vec<TileOp> = (0..tiles)
        .map(|i| TileOp {
            id: i,
            index_region: Region::new(
                index_base.offset((i * per_tile) as u64 * 4),
                per_tile as u64 * 4,
            ),
            gather: Some(GatherDesc { func, batch: 16 }),
            dma_bytes: 64,
            compute_cycles: 50,
            store_bytes: 0,
        })
        .collect();
    let program = NpuProgram {
        name: "prop".into(),
        width: DataWidth::Int8,
        tiles,
        image,
    };
    program.assert_valid();
    program
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// NVR never slows a program down relative to the no-prefetch baseline,
    /// and its accuracy/coverage stats stay within bounds, for arbitrary
    /// program shapes.
    #[test]
    fn nvr_is_never_slower(
        tiles in 4usize..12,
        per_tile in 16usize..96,
        row_pow in 6u32..9, // 64..256-byte rows
        seed in 0u64..1_000,
    ) {
        let program = random_program(tiles, per_tile, 1 << row_pow, seed);
        let mem_cfg = MemoryConfig::default();
        let ino = run_system(&program, &mem_cfg, SystemKind::InOrder);
        let nvr = run_system(&program, &mem_cfg, SystemKind::Nvr);
        prop_assert!(nvr.result.total_cycles <= ino.result.total_cycles);
        let acc = nvr.result.mem.prefetch_accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert!(nvr.result.gather_element_misses <= ino.result.gather_element_misses);
    }

    /// Timing monotonicity: more DRAM bandwidth never increases wall-clock.
    #[test]
    fn bandwidth_monotonicity(
        seed in 0u64..1_000,
        per_tile in 16usize..64,
    ) {
        let program = random_program(6, per_tile, 64, seed);
        let cycles_at = |bpc: u64| {
            let cfg = MemoryConfig::default().with_dram(DramConfig {
                bytes_per_cycle: bpc,
                ..DramConfig::default()
            });
            run_system(&program, &cfg, SystemKind::InOrder).result.total_cycles
        };
        prop_assert!(cycles_at(32) <= cycles_at(8));
        prop_assert!(cycles_at(8) <= cycles_at(2));
    }

    /// A bigger L2 never increases misses for the same trace.
    #[test]
    fn cache_size_monotonicity(
        seed in 0u64..1_000,
    ) {
        let program = random_program(8, 64, 128, seed);
        let misses_at = |kb: u64| {
            let cfg = MemoryConfig::default()
                .with_l2(CacheConfig::l2_default().with_size(kb * 1024));
            run_system(&program, &cfg, SystemKind::InOrder)
                .result
                .mem
                .l2
                .demand_misses
                .get()
        };
        prop_assert!(misses_at(1024) <= misses_at(64));
    }

    /// Batch-level misses dominate element-level misses (§II-B's argument
    /// for coverage-oriented prefetching), for any program shape.
    #[test]
    fn batch_miss_rate_bounds_element_miss_rate(
        tiles in 4usize..10,
        per_tile in 16usize..80,
        seed in 0u64..1_000,
    ) {
        let program = random_program(tiles, per_tile, 64, seed);
        let o = run_system(&program, &MemoryConfig::default(), SystemKind::InOrder);
        prop_assert!(o.result.batch_miss_rate() >= o.result.element_miss_rate());
    }
}
