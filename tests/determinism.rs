//! Bit-level determinism: identical seeds must produce identical programs
//! and identical simulation results — the precondition for comparing
//! prefetchers on the same access stream.

use nvr::prelude::*;

#[test]
fn identical_seeds_identical_results() {
    for workload in [WorkloadId::Ds, WorkloadId::Mk, WorkloadId::Gat] {
        let run = || {
            let spec = WorkloadSpec::tiny(DataWidth::Fp16, 777);
            let program = workload.build(&spec);
            let o = run_system(&program, &MemoryConfig::default(), SystemKind::Nvr);
            (
                o.result.total_cycles,
                o.result.gather_element_misses,
                o.result.mem.l2.prefetch_issued.get(),
                o.result.mem.dram.demand_lines.get(),
            )
        };
        assert_eq!(run(), run(), "{} not deterministic", workload.short());
    }
}

#[test]
fn different_seeds_differ() {
    let totals: Vec<u64> = (0..3)
        .map(|seed| {
            let spec = WorkloadSpec::tiny(DataWidth::Fp16, seed);
            let program = WorkloadId::Ds.build(&spec);
            run_system(&program, &MemoryConfig::default(), SystemKind::InOrder)
                .result
                .total_cycles
        })
        .collect();
    assert!(
        totals.windows(2).any(|w| w[0] != w[1]),
        "seeds should change the trace: {totals:?}"
    );
}

#[test]
fn width_changes_timing_not_structure() {
    let structure = |width| {
        let spec = WorkloadSpec::tiny(width, 5);
        let program = WorkloadId::H2o.build(&spec);
        (program.tiles.len(), program.stats().gather_elems)
    };
    // Same tile structure across widths (only row bytes change)...
    assert_eq!(structure(DataWidth::Int8), structure(DataWidth::Int32));
    // ...but wider data takes longer on the same memory system.
    let cycles = |width| {
        let spec = WorkloadSpec::tiny(width, 5);
        let program = WorkloadId::H2o.build(&spec);
        run_system(&program, &MemoryConfig::default(), SystemKind::InOrder)
            .result
            .total_cycles
    };
    assert!(cycles(DataWidth::Int32) > cycles(DataWidth::Int8));
}

#[test]
fn parallel_sweep_matches_serial_bit_for_bit() {
    // The sweep runner must be a pure parallelisation: fanning the grid
    // out over 4 workers may not change a single counter relative to the
    // single-threaded run of the same spec. The spec deliberately covers
    // the NSB-backed system (whose scored retention and VMIG admission
    // threshold are active), every tile order (so the order-permuted GAT
    // builds are part of the contract), and a two-channel DRAM backend,
    // so the demand/prefetch arbitration and channel interleave are part
    // of the bit-equality contract.
    let spec = SweepSpec {
        workloads: vec![WorkloadId::Ds, WorkloadId::Mk, WorkloadId::Gat],
        systems: vec![SystemKind::InOrder, SystemKind::Nvr, SystemKind::NvrNsb],
        scales: vec![Scale::Tiny],
        orders: TileOrder::ALL.to_vec(),
        widths: vec![DataWidth::Fp16],
        seeds: vec![777, 778],
        nsb_admit: None,
        mem_cfg: MemoryConfig {
            dram: DramConfig::default().with_channels(2),
            ..MemoryConfig::default()
        },
    };
    let serial = run_sweep(&spec, 1);
    let parallel = run_sweep(&spec, 4);
    assert_eq!(serial.cells.len(), parallel.cells.len());
    for (a, b) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(a.job.key(), b.job.key(), "job order must be stable");
        assert_eq!(
            a.outcome.result.total_cycles,
            b.outcome.result.total_cycles,
            "{}: cycles differ across worker counts",
            a.job.key()
        );
        assert_eq!(
            a.outcome.base_cycles,
            b.outcome.base_cycles,
            "{}: base cycles differ",
            a.job.key()
        );
        assert_eq!(
            (
                a.outcome.result.gather_element_misses,
                a.outcome.result.mem.l2.demand_misses.get(),
                a.outcome.result.mem.l2.prefetch_issued.get(),
                a.outcome.result.mem.dram.demand_lines.get(),
            ),
            (
                b.outcome.result.gather_element_misses,
                b.outcome.result.mem.l2.demand_misses.get(),
                b.outcome.result.mem.l2.prefetch_issued.get(),
                b.outcome.result.mem.dram.demand_lines.get(),
            ),
            "{}: memory counters differ across worker counts",
            a.job.key()
        );
        // The measured timeliness — including the full issue→use slack
        // histogram, bucket by bucket — must be bit-identical too.
        assert_eq!(
            a.outcome.timeliness,
            b.outcome.timeliness,
            "{}: timeliness histogram differs across worker counts",
            a.job.key()
        );
        // Per-channel counters (utilisation inputs, queue-delay
        // histograms) are part of the bit-equality contract too.
        assert_eq!(
            a.outcome.result.mem.dram.channels,
            b.outcome.result.mem.dram.channels,
            "{}: per-channel stats differ across worker counts",
            a.job.key()
        );
        assert_eq!(a.outcome.result.mem.dram.channels.len(), 2);
        if a.job.system == SystemKind::Nvr || a.job.system == SystemKind::NvrNsb {
            let t = a
                .outcome
                .timeliness
                .as_ref()
                .expect("NVR cells carry a timeliness report");
            assert!(
                t.slack.count() > 0,
                "{}: NVR should measure a nonzero slack distribution",
                a.job.key()
            );
            assert!(
                t.queue_delay.count() > 0,
                "{}: issued prefetches record channel queue delay",
                a.job.key()
            );
        }
    }
    // And the canonical CSV renditions are byte-identical.
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

/// Pinned result fingerprints for every system on one graph workload and
/// one attention workload.
///
/// The simulator's hot paths are data-layout- and scheduling-optimised
/// (SoA cache metadata, sorted MSHR files, event-driven issue skipping,
/// open-addressed bookkeeping maps); none of that may move a single
/// counter. This table is the seed behaviour, captured before those
/// rewrites: cycles, hit/miss splits, DRAM traffic, prefetch usefulness
/// and the full timeliness outcome, per system. A mismatch means a
/// "performance" change altered simulation semantics — exactly the
/// regression this suite exists to catch. (The perf gate's
/// `sim_cycles_total` check covers the whole grid's cycle sum; this test
/// pins the per-system, per-counter decomposition.)
#[test]
fn optimised_hot_paths_match_seed_fingerprints() {
    // Columns: workload, system, total_cycles, base_cycles,
    // l2_demand_misses, l2_demand_hits, dram_demand_lines,
    // l2_prefetch_issued, l2_prefetch_useful, timely, late,
    // evicted_unused, slack_sum.
    const GOLDEN: &[(&str, &str, [u64; 11])] = &[
        (
            "GCN",
            "InO",
            [331088, 50435, 18542, 3009, 18542, 0, 0, 0, 0, 0, 0],
        ),
        (
            "GCN",
            "OoO",
            [244120, 42440, 18546, 3001, 18546, 0, 0, 0, 0, 0, 0],
        ),
        (
            "GCN",
            "Stream",
            [327376, 50435, 18197, 3160, 18197, 523, 364, 0, 0, 0, 0],
        ),
        (
            "GCN",
            "IMP",
            [324648, 50435, 17812, 3714, 17812, 1288, 812, 0, 0, 0, 0],
        ),
        (
            "GCN",
            "DVR",
            [269000, 50435, 11578, 9967, 11578, 7771, 7096, 0, 0, 0, 0],
        ),
        (
            "GCN",
            "NVR",
            [
                190193, 50435, 5789, 8578, 5789, 12862, 12814, 5630, 7184, 47, 10622041,
            ],
        ),
        (
            "GCN",
            "NVR+NSB",
            [
                189670, 45448, 5585, 3376, 5585, 12872, 4546, 5693, 7018, 160, 10439650,
            ],
        ),
        (
            "H2O",
            "InO",
            [71816, 16928, 2168, 4168, 2168, 0, 0, 0, 0, 0, 0],
        ),
        (
            "H2O",
            "OoO",
            [49949, 12338, 2168, 4168, 2168, 0, 0, 0, 0, 0, 0],
        ),
        (
            "H2O",
            "Stream",
            [71280, 16928, 2012, 4232, 2012, 157, 156, 0, 0, 0, 0],
        ),
        (
            "H2O",
            "IMP",
            [67504, 16928, 1629, 4706, 1629, 735, 540, 0, 0, 0, 0],
        ),
        (
            "H2O",
            "DVR",
            [68000, 16928, 1744, 4264, 1744, 498, 424, 0, 0, 0, 0],
        ),
        (
            "H2O",
            "NVR",
            [
                25167, 16928, 40, 5902, 40, 2135, 2128, 1734, 394, 0, 1837241,
            ],
        ),
        (
            "H2O",
            "NVR+NSB",
            [25241, 12896, 40, 253, 40, 2135, 281, 1454, 674, 0, 1630986],
        ),
    ];
    let mut idx = 0;
    for workload in [WorkloadId::Gcn, WorkloadId::H2o] {
        let spec = WorkloadSpec {
            width: DataWidth::Fp16,
            seed: 777,
            scale: Scale::Tiny,
            order: TileOrder::Natural,
        };
        let program = workload.build(&spec);
        for system in SystemKind::ALL {
            let o = run_system(&program, &MemoryConfig::default(), system);
            let m = &o.result.mem;
            let t = o.timeliness.clone().unwrap_or_default();
            let got = (
                workload.short(),
                system.label(),
                [
                    o.result.total_cycles,
                    o.base_cycles,
                    m.l2.demand_misses.get(),
                    m.l2.demand_hits.get(),
                    m.dram.demand_lines.get(),
                    m.l2.prefetch_issued.get(),
                    m.l2.prefetch_useful.get(),
                    t.timely,
                    t.late,
                    t.evicted_unused,
                    t.slack.sum(),
                ],
            );
            assert_eq!(
                got,
                GOLDEN[idx],
                "{} / {} deviates from the seed fingerprint",
                workload.short(),
                system.label()
            );
            idx += 1;
        }
    }
    assert_eq!(idx, GOLDEN.len(), "every golden row must be exercised");
}
