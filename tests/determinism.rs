//! Bit-level determinism: identical seeds must produce identical programs
//! and identical simulation results — the precondition for comparing
//! prefetchers on the same access stream.

use nvr::prelude::*;

#[test]
fn identical_seeds_identical_results() {
    for workload in [WorkloadId::Ds, WorkloadId::Mk, WorkloadId::Gat] {
        let run = || {
            let spec = WorkloadSpec::tiny(DataWidth::Fp16, 777);
            let program = workload.build(&spec);
            let o = run_system(&program, &MemoryConfig::default(), SystemKind::Nvr);
            (
                o.result.total_cycles,
                o.result.gather_element_misses,
                o.result.mem.l2.prefetch_issued.get(),
                o.result.mem.dram.demand_lines.get(),
            )
        };
        assert_eq!(run(), run(), "{} not deterministic", workload.short());
    }
}

#[test]
fn different_seeds_differ() {
    let totals: Vec<u64> = (0..3)
        .map(|seed| {
            let spec = WorkloadSpec::tiny(DataWidth::Fp16, seed);
            let program = WorkloadId::Ds.build(&spec);
            run_system(&program, &MemoryConfig::default(), SystemKind::InOrder)
                .result
                .total_cycles
        })
        .collect();
    assert!(
        totals.windows(2).any(|w| w[0] != w[1]),
        "seeds should change the trace: {totals:?}"
    );
}

#[test]
fn width_changes_timing_not_structure() {
    let structure = |width| {
        let spec = WorkloadSpec::tiny(width, 5);
        let program = WorkloadId::H2o.build(&spec);
        (program.tiles.len(), program.stats().gather_elems)
    };
    // Same tile structure across widths (only row bytes change)...
    assert_eq!(structure(DataWidth::Int8), structure(DataWidth::Int32));
    // ...but wider data takes longer on the same memory system.
    let cycles = |width| {
        let spec = WorkloadSpec::tiny(width, 5);
        let program = WorkloadId::H2o.build(&spec);
        run_system(&program, &MemoryConfig::default(), SystemKind::InOrder)
            .result
            .total_cycles
    };
    assert!(cycles(DataWidth::Int32) > cycles(DataWidth::Int8));
}

#[test]
fn parallel_sweep_matches_serial_bit_for_bit() {
    // The sweep runner must be a pure parallelisation: fanning the grid
    // out over 4 workers may not change a single counter relative to the
    // single-threaded run of the same spec. The spec deliberately covers
    // the NSB-backed system (whose scored retention and VMIG admission
    // threshold are active), every tile order (so the order-permuted GAT
    // builds are part of the contract), and a two-channel DRAM backend,
    // so the demand/prefetch arbitration and channel interleave are part
    // of the bit-equality contract.
    let spec = SweepSpec {
        workloads: vec![WorkloadId::Ds, WorkloadId::Mk, WorkloadId::Gat],
        systems: vec![SystemKind::InOrder, SystemKind::Nvr, SystemKind::NvrNsb],
        scales: vec![Scale::Tiny],
        orders: TileOrder::ALL.to_vec(),
        widths: vec![DataWidth::Fp16],
        seeds: vec![777, 778],
        nsb_admit: None,
        mem_cfg: MemoryConfig {
            dram: DramConfig::default().with_channels(2),
            ..MemoryConfig::default()
        },
    };
    let serial = run_sweep(&spec, 1);
    let parallel = run_sweep(&spec, 4);
    assert_eq!(serial.cells.len(), parallel.cells.len());
    for (a, b) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!(a.job.key(), b.job.key(), "job order must be stable");
        assert_eq!(
            a.outcome.result.total_cycles,
            b.outcome.result.total_cycles,
            "{}: cycles differ across worker counts",
            a.job.key()
        );
        assert_eq!(
            a.outcome.base_cycles,
            b.outcome.base_cycles,
            "{}: base cycles differ",
            a.job.key()
        );
        assert_eq!(
            (
                a.outcome.result.gather_element_misses,
                a.outcome.result.mem.l2.demand_misses.get(),
                a.outcome.result.mem.l2.prefetch_issued.get(),
                a.outcome.result.mem.dram.demand_lines.get(),
            ),
            (
                b.outcome.result.gather_element_misses,
                b.outcome.result.mem.l2.demand_misses.get(),
                b.outcome.result.mem.l2.prefetch_issued.get(),
                b.outcome.result.mem.dram.demand_lines.get(),
            ),
            "{}: memory counters differ across worker counts",
            a.job.key()
        );
        // The measured timeliness — including the full issue→use slack
        // histogram, bucket by bucket — must be bit-identical too.
        assert_eq!(
            a.outcome.timeliness,
            b.outcome.timeliness,
            "{}: timeliness histogram differs across worker counts",
            a.job.key()
        );
        // Per-channel counters (utilisation inputs, queue-delay
        // histograms) are part of the bit-equality contract too.
        assert_eq!(
            a.outcome.result.mem.dram.channels,
            b.outcome.result.mem.dram.channels,
            "{}: per-channel stats differ across worker counts",
            a.job.key()
        );
        assert_eq!(a.outcome.result.mem.dram.channels.len(), 2);
        if a.job.system == SystemKind::Nvr || a.job.system == SystemKind::NvrNsb {
            let t = a
                .outcome
                .timeliness
                .as_ref()
                .expect("NVR cells carry a timeliness report");
            assert!(
                t.slack.count() > 0,
                "{}: NVR should measure a nonzero slack distribution",
                a.job.key()
            );
            assert!(
                t.queue_delay.count() > 0,
                "{}: issued prefetches record channel queue delay",
                a.job.key()
            );
        }
    }
    // And the canonical CSV renditions are byte-identical.
    assert_eq!(serial.to_csv(), parallel.to_csv());
}
