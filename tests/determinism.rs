//! Bit-level determinism: identical seeds must produce identical programs
//! and identical simulation results — the precondition for comparing
//! prefetchers on the same access stream.

use nvr::prelude::*;

#[test]
fn identical_seeds_identical_results() {
    for workload in [WorkloadId::Ds, WorkloadId::Mk, WorkloadId::Gat] {
        let run = || {
            let spec = WorkloadSpec::tiny(DataWidth::Fp16, 777);
            let program = workload.build(&spec);
            let o = run_system(&program, &MemoryConfig::default(), SystemKind::Nvr);
            (
                o.result.total_cycles,
                o.result.gather_element_misses,
                o.result.mem.l2.prefetch_issued.get(),
                o.result.mem.dram.demand_lines.get(),
            )
        };
        assert_eq!(run(), run(), "{} not deterministic", workload.short());
    }
}

#[test]
fn different_seeds_differ() {
    let totals: Vec<u64> = (0..3)
        .map(|seed| {
            let spec = WorkloadSpec::tiny(DataWidth::Fp16, seed);
            let program = WorkloadId::Ds.build(&spec);
            run_system(&program, &MemoryConfig::default(), SystemKind::InOrder)
                .result
                .total_cycles
        })
        .collect();
    assert!(
        totals.windows(2).any(|w| w[0] != w[1]),
        "seeds should change the trace: {totals:?}"
    );
}

#[test]
fn width_changes_timing_not_structure() {
    let structure = |width| {
        let spec = WorkloadSpec::tiny(width, 5);
        let program = WorkloadId::H2o.build(&spec);
        (program.tiles.len(), program.stats().gather_elems)
    };
    // Same tile structure across widths (only row bytes change)...
    assert_eq!(structure(DataWidth::Int8), structure(DataWidth::Int32));
    // ...but wider data takes longer on the same memory system.
    let cycles = |width| {
        let spec = WorkloadSpec::tiny(width, 5);
        let program = WorkloadId::H2o.build(&spec);
        run_system(&program, &MemoryConfig::default(), SystemKind::InOrder)
            .result
            .total_cycles
    };
    assert!(cycles(DataWidth::Int32) > cycles(DataWidth::Int8));
}
