//! Property tests for the scored NSB retention policy: invariants that
//! must hold for *every* fill/shrink/probe sequence, not just the
//! calibrated workloads.
//!
//! Three properties lock the policy's contract:
//! 1. occupancy never exceeds the buffer's line capacity;
//! 2. with all-zero scores (admission threshold 0) the scored buffer is
//!    bit-for-bit the pure-LRU buffer — same residency, same stats;
//! 3. a fill/shrink decision never evicts an active-window line (a
//!    speculative fill with remaining score that has not yet seen its
//!    demand) — the runahead thread only resolves targets inside the
//!    lookahead horizon, so such a line's demand is imminent.

use std::collections::BTreeSet;

use proptest::prelude::*;
use proptest::TestRng;

use nvr::core::{nsb_config, nsb_scored};
use nvr::mem::{Cache, ProbeResult};
use nvr::prelude::*;

/// One step of a randomly generated NSB op sequence.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Speculative fill carrying a predicted-reuse score.
    Fill { line: u64, score: u32 },
    /// Demand probe (a hit consumes one predicted use).
    Probe { line: u64 },
}

/// Generates a random op sequence. The vendored proptest shim has no
/// `prop_oneof`/`prop_map`, so this implements its `Strategy` trait
/// directly: each element is a fair coin between a fill (uniform line,
/// uniform score in `0..=max_score`) and a demand probe (uniform line).
struct OpSeq {
    len: std::ops::Range<usize>,
    lines: u64,
    max_score: u32,
}

impl Strategy for OpSeq {
    type Value = Vec<Op>;

    fn generate(&self, rng: &mut TestRng) -> Vec<Op> {
        let span = (self.len.end - self.len.start) as u64;
        let len = self.len.start + rng.below(span) as usize;
        (0..len)
            .map(|_| {
                let line = rng.below(self.lines);
                if rng.next_u64() & 1 == 0 {
                    let score = rng.below(u64::from(self.max_score) + 1) as u32;
                    Op::Fill { line, score }
                } else {
                    Op::Probe { line }
                }
            })
            .collect()
    }
}

fn op_seq(max_score: u32) -> OpSeq {
    OpSeq {
        len: 1..200,
        lines: LINE_UNIVERSE,
        max_score,
    }
}

/// A 4 KB NSB-shaped buffer: 64 lines, 16 ways, 4 sets — small enough
/// that random sequences generate real eviction pressure.
const NSB_KIB: u64 = 4;
const LINE_UNIVERSE: u64 = 256;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: however the fill/shrink policy decides, the number of
    /// resident lines never exceeds the buffer's capacity.
    #[test]
    fn occupancy_never_exceeds_capacity(
        ops in op_seq(6),
    ) {
        let mut cache = Cache::new(nsb_scored(NSB_KIB));
        let capacity = (NSB_KIB * 1024 / 64) as usize;
        let mut touched = BTreeSet::new();
        for (now, op) in ops.iter().enumerate() {
            let now = now as Cycle;
            match *op {
                Op::Fill { line, score } => {
                    cache.install_speculative_scored(LineAddr::new(line), now, now, 0, score);
                    touched.insert(line);
                }
                Op::Probe { line } => {
                    cache.probe(LineAddr::new(line), now, true);
                }
            }
            let resident = touched
                .iter()
                .filter(|&&l| cache.contains(LineAddr::new(l)))
                .count();
            prop_assert!(
                resident <= capacity,
                "{resident} resident lines exceed capacity {capacity}"
            );
        }
    }

    /// Property 2: admission threshold 0 means every fill carries score 0,
    /// and the scored buffer must then reproduce the pure-LRU buffer bit
    /// for bit — identical residency for every touched line and identical
    /// statistics after every sequence.
    #[test]
    fn zero_scores_reproduce_lru_bit_for_bit(
        ops in op_seq(0),
    ) {
        let mut lru = Cache::new(nsb_config(NSB_KIB));
        let mut scored = Cache::new(nsb_scored(NSB_KIB));
        for (now, op) in ops.iter().enumerate() {
            let now = now as Cycle;
            for cache in [&mut lru, &mut scored] {
                match *op {
                    Op::Fill { line, .. } => {
                        cache.install_speculative_scored(LineAddr::new(line), now, now, 0, 0);
                    }
                    Op::Probe { line } => {
                        cache.probe(LineAddr::new(line), now, true);
                    }
                }
            }
        }
        for line in 0..LINE_UNIVERSE {
            prop_assert_eq!(
                lru.contains(LineAddr::new(line)),
                scored.contains(LineAddr::new(line)),
                "line {} residency diverged between LRU and scored-at-zero",
                line
            );
        }
        let (mut a, mut b) = (lru.stats().clone(), scored.stats().clone());
        a.name = "X";
        b.name = "X";
        prop_assert_eq!(a, b, "stats diverged between LRU and scored-at-zero");
    }

    /// Property 3: a fill/shrink decision never evicts an active-window
    /// line — one speculatively filled with a remaining score that has
    /// not yet been demanded. Such a line only leaves the buffer once its
    /// demand arrives (probe) or its score is aged to zero by rejections.
    ///
    /// Aging targets the weakest resident, which is not observable per
    /// line from outside, so the model keeps a sound *lower bound* on
    /// each active line's remaining score: install score minus every
    /// rejection since (each rejection ages at most one line by one).
    /// Any line whose lower bound is still >= 1 cannot have drained and
    /// therefore must still be resident.
    #[test]
    fn fill_never_evicts_active_window_line(
        ops in op_seq(6),
    ) {
        let mut cache = Cache::new(nsb_scored(NSB_KIB));
        // line -> (score at install, rejection count at install).
        let mut active: std::collections::BTreeMap<u64, (u32, u64)> =
            std::collections::BTreeMap::new();
        // Lines that have seen a demand while resident: a later prefetch
        // refill of such a line is accepted but does NOT restore its
        // active-window protection (the way stays `demanded` until it is
        // evicted and reinstalled fresh).
        let mut demanded: BTreeSet<u64> = BTreeSet::new();
        for (now, op) in ops.iter().enumerate() {
            let now = now as Cycle;
            match *op {
                Op::Fill { line, score } => {
                    // A demanded line that has since been evicted would be
                    // reinstalled fresh (and protected) by this fill.
                    demanded.retain(|&l| cache.contains(LineAddr::new(l)));
                    let accepted =
                        cache.install_speculative_scored(LineAddr::new(line), now, now, 0, score);
                    let rejects = cache.stats().retention_rejected.get();
                    if accepted && score >= 1 && !demanded.contains(&line) {
                        // A refresh of a resident line maxes the scores, so
                        // the incoming score is a valid lower bound either
                        // way.
                        active.insert(line, (score, rejects));
                    }
                    for (&l, &(s, r0)) in &active {
                        let aged = (rejects - r0) as u32;
                        if s.saturating_sub(aged) >= 1 {
                            prop_assert!(
                                cache.contains(LineAddr::new(l)),
                                "fill of line {} evicted active-window line {} \
                                 (score {}, aged {})",
                                line, l, s, aged
                            );
                        }
                    }
                }
                Op::Probe { line } => {
                    if cache.probe(LineAddr::new(line), now, true) != ProbeResult::Miss {
                        // Demand arrived: the line leaves the window and
                        // stays unprotected until evicted and refilled.
                        active.remove(&line);
                        demanded.insert(line);
                    }
                }
            }
        }
    }
}
