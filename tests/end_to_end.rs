//! End-to-end integration tests spanning the whole stack: workload
//! generators → NPU engine → memory hierarchy → prefetchers.

use nvr::prelude::*;

/// Every workload runs to completion under every system, and basic timing
/// invariants hold.
#[test]
fn all_workloads_under_all_systems() {
    let mem_cfg = MemoryConfig::default();
    for workload in WorkloadId::ALL {
        let spec = WorkloadSpec::tiny(DataWidth::Int8, 1);
        let program = workload.build(&spec);
        let stats = program.stats();
        for system in SystemKind::ALL {
            let o = run_system(&program, &mem_cfg, system);
            assert!(
                o.result.total_cycles > 0,
                "{}/{}: zero cycles",
                workload.short(),
                system.label()
            );
            assert!(
                o.base_cycles <= o.result.total_cycles,
                "{}/{}: base exceeds total",
                workload.short(),
                system.label()
            );
            assert_eq!(
                o.result.gather_elements,
                stats.gather_elems,
                "{}/{}: gather count drifted",
                workload.short(),
                system.label()
            );
            assert!(
                o.result.compute_cycles == stats.compute_cycles,
                "{}/{}: compute drifted",
                workload.short(),
                system.label()
            );
        }
    }
}

/// NVR never loses to the in-order baseline, on any workload or width.
#[test]
fn nvr_dominates_inorder_everywhere() {
    let mem_cfg = MemoryConfig::default();
    for workload in WorkloadId::ALL {
        for width in DataWidth::ALL {
            let spec = WorkloadSpec::tiny(width, 5);
            let program = workload.build(&spec);
            let ino = run_system(&program, &mem_cfg, SystemKind::InOrder);
            let nvr = run_system(&program, &mem_cfg, SystemKind::Nvr);
            assert!(
                nvr.result.total_cycles <= ino.result.total_cycles,
                "{}/{}: NVR {} vs InO {}",
                workload.short(),
                width,
                nvr.result.total_cycles,
                ino.result.total_cycles
            );
        }
    }
}

/// The paper's ordering on the scattered-gather workloads: runahead beats
/// pattern-based prefetching, which beats nothing.
#[test]
fn prefetcher_hierarchy_on_scattered_gathers() {
    let mem_cfg = MemoryConfig::default();
    let spec = WorkloadSpec::tiny(DataWidth::Fp16, 9);
    let program = WorkloadId::Ds.build(&spec);
    let cycles = |system| run_system(&program, &mem_cfg, system).result.total_cycles;
    let ino = cycles(SystemKind::InOrder);
    let dvr = cycles(SystemKind::Dvr);
    let nvr = cycles(SystemKind::Nvr);
    assert!(nvr < ino, "NVR {nvr} must beat InO {ino}");
    assert!(nvr <= dvr, "NVR {nvr} must not lose to DVR {dvr}");
    assert!(dvr < ino, "DVR {dvr} must beat InO {ino}");
}

/// The NSB helps NVR but not an inaccurate prefetcher (§V-B: "NSB
/// activation depends on prefetcher accuracy").
#[test]
fn nsb_depends_on_prefetcher_accuracy() {
    use nvr::core::nsb_config;
    let plain = MemoryConfig::default();
    let with_nsb = MemoryConfig::default().with_nsb(nsb_config(16));
    let spec = WorkloadSpec::tiny(DataWidth::Int32, 13);
    let program = WorkloadId::H2o.build(&spec);

    let nvr_plain = run_system(&program, &plain, SystemKind::Nvr);
    let nvr_nsb = run_system(&program, &with_nsb, SystemKind::Nvr);
    // Latency must not regress beyond noise (the NSB lookup adds 2 cycles
    // to its misses), and NPU-visible L2 traffic must drop (its purpose).
    assert!(
        nvr_nsb.result.total_cycles as f64 <= nvr_plain.result.total_cycles as f64 * 1.02,
        "NSB should not hurt accurate NVR: {} vs {}",
        nvr_nsb.result.total_cycles,
        nvr_plain.result.total_cycles
    );
    let l2_demands_nsb = nvr_nsb.result.mem.l2.demand_accesses();
    let l2_demands_plain = nvr_plain.result.mem.l2.demand_accesses();
    assert!(
        l2_demands_nsb < l2_demands_plain,
        "NSB should absorb NPU-side reads: {l2_demands_nsb} vs {l2_demands_plain}"
    );
}

/// The first-class NVR+NSB system beats plain NVR on a reuse-heavy
/// workload (SCN's voxel neighbourhoods revisit rows; §IV-G's implicit
/// cache-line reuse): retained rows hit at NSB latency instead of L2
/// latency.
#[test]
fn nvr_nsb_wins_on_reuse_heavy_workload() {
    let mem_cfg = MemoryConfig::default();
    for seed in [1, 5, 13] {
        let spec = WorkloadSpec::tiny(DataWidth::Fp16, seed);
        let program = WorkloadId::Scn.build(&spec);
        let nvr = run_system(&program, &mem_cfg, SystemKind::Nvr);
        let nsb = run_system(&program, &mem_cfg, SystemKind::NvrNsb);
        assert!(
            nsb.result.total_cycles <= nvr.result.total_cycles,
            "seed {seed}: NVR+NSB {} should not lose to NVR {} on SCN",
            nsb.result.total_cycles,
            nvr.result.total_cycles
        );
        // The win comes from the buffer absorbing NPU-side reads.
        let nsb_hits = nsb
            .result
            .mem
            .nsb
            .as_ref()
            .expect("NSB stats present")
            .demand_hits
            .get();
        assert!(nsb_hits > 0, "seed {seed}: NSB should serve demands");
    }
}

/// Gather counts, misses and hits are mutually consistent.
#[test]
fn stat_consistency() {
    let mem_cfg = MemoryConfig::default();
    let spec = WorkloadSpec::tiny(DataWidth::Int8, 21);
    let program = WorkloadId::Gcn.build(&spec);
    let o = run_system(&program, &mem_cfg, SystemKind::Nvr);
    let l2 = &o.result.mem.l2;
    assert_eq!(
        l2.demand_accesses(),
        l2.demand_hits.get() + l2.mshr_merges.get() + l2.demand_misses.get()
    );
    assert!(o.result.gather_element_misses <= o.result.gather_elements);
    assert!(o.result.gather_batch_misses <= o.result.gather_batches);
    assert!(o.result.batch_miss_rate() >= o.result.element_miss_rate());
    let acc = o.result.mem.prefetch_accuracy();
    assert!((0.0..=1.0).contains(&acc));
}

/// The ideal-memory run is a true lower bound across systems.
#[test]
fn ideal_memory_is_lower_bound() {
    let spec = WorkloadSpec::tiny(DataWidth::Fp16, 17);
    let program = WorkloadId::Gsabt.build(&spec);
    let bases: Vec<u64> = SystemKind::ALL
        .iter()
        .map(|&s| run_system(&program, &MemoryConfig::default(), s).base_cycles)
        .collect();
    // In-order systems share the same base; OoO's differs but is not larger.
    let ino_base = bases[0];
    for (i, &b) in bases.iter().enumerate() {
        assert!(
            b <= ino_base,
            "system {i} base {b} exceeds in-order base {ino_base}"
        );
    }
}
